"""Experiment E10 — SQL end to end (the title claim).

A schema with PRIMARY KEY / FOREIGN KEY constraints is declared in SQL, a SQL
join query is reformulated under the semantics the SQL standard assigns to
it, and the reformulations are rendered back to SQL.  The reproduced shape:
the redundant lookup joins are dropped under every semantics here (the
referenced tables are keyed and duplicate free), and dropping the PRIMARY KEY
of ``customer`` makes the customer join *not* removable under bag semantics
while it is still removable under set semantics — the core practical point of
bag-aware reformulation.
"""

from __future__ import annotations

from _util import record

from repro.paperlib import ORDERS_DDL
from repro.reformulation import chase_and_backchase
from repro.sql import query_to_sql, schema_from_ddl, translate_sql

QUERY = (
    "SELECT o.oid FROM orders o, customer c, product p "
    "WHERE o.cid = c.cid AND o.pid = p.pid"
)

# Same schema but the customer table loses its PRIMARY KEY (and thus may
# contain duplicates): the customer join is no longer multiplicity preserving.
DDL_WITHOUT_CUSTOMER_KEY = ORDERS_DDL.replace("cid INT PRIMARY KEY, cname TEXT", "cid INT, cname TEXT")


def bench_pipeline_with_keys(benchmark):
    schema, dependencies = schema_from_ddl(ORDERS_DDL)

    def pipeline():
        translated = translate_sql(QUERY, schema)
        result = chase_and_backchase(
            translated.query, dependencies, translated.semantics,
            check_sigma_minimality=False,
        )
        shortest = min(result.reformulations, key=lambda q: len(q.body))
        return {
            "semantics": str(translated.semantics),
            "reformulations": len(result.reformulations),
            "shortest_sql": query_to_sql(shortest, schema, translated.semantics),
            "shortest_body": len(shortest.body),
        }

    result = benchmark(pipeline)
    assert result["semantics"] == "bag"
    assert result["shortest_body"] == 1
    record(benchmark, measured=result)


def bench_pipeline_without_customer_key(benchmark):
    schema, dependencies = schema_from_ddl(DDL_WITHOUT_CUSTOMER_KEY)

    def pipeline():
        translated = translate_sql(QUERY, schema)
        bag_result = chase_and_backchase(
            translated.query, dependencies, "bag", check_sigma_minimality=False
        )
        set_result = chase_and_backchase(
            translated.query, dependencies, "set", check_sigma_minimality=False
        )
        customer_join_removable_bag = any(
            "customer" not in q.predicates() for q in bag_result.reformulations
        )
        customer_join_removable_set = any(
            "customer" not in q.predicates() for q in set_result.reformulations
        )
        return {
            "bag_reformulations": len(bag_result.reformulations),
            "set_reformulations": len(set_result.reformulations),
            "customer_join_removable_under_bag": customer_join_removable_bag,
            "customer_join_removable_under_set": customer_join_removable_set,
        }

    result = benchmark(pipeline)
    assert result["customer_join_removable_under_bag"] is False
    assert result["customer_join_removable_under_set"] is True
    record(
        benchmark,
        measured=result,
        paper_expected="without the key the join changes multiplicities, so only "
        "the set-semantics optimizer may drop it (Section 1 motivation)",
    )


def bench_distinct_query_uses_set_semantics(benchmark):
    schema, dependencies = schema_from_ddl(DDL_WITHOUT_CUSTOMER_KEY)

    def pipeline():
        translated = translate_sql("SELECT DISTINCT " + QUERY[len("SELECT "):], schema)
        result = chase_and_backchase(
            translated.query, dependencies, translated.semantics,
            check_sigma_minimality=False,
        )
        return {
            "semantics": str(translated.semantics),
            "shortest_body": min(len(q.body) for q in result.reformulations),
        }

    result = benchmark(pipeline)
    assert result == {"semantics": "set", "shortest_body": 1}
    record(benchmark, measured=result)
