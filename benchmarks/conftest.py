"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one experiment of DESIGN.md's
per-experiment index (E1–E11).  Besides timing the relevant procedure with
pytest-benchmark, each benchmark records the *reproduced values* (equivalence
verdicts, chase sizes, reformulation counts, multiplicities) in
``benchmark.extra_info`` so that the numbers the paper reports can be read
straight out of ``pytest benchmarks/ --benchmark-only -v`` output or the
saved JSON (``--benchmark-json``).
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `pytest benchmarks -q` work from a plain checkout: put src/ on the
# path before the repro imports below run.  Kept ahead of any environment
# entry so an installed (possibly stale) repro never shadows the checkout.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.paperlib import (
    example_4_1,
    example_4_2,
    example_4_3,
    example_4_6,
    example_e_1,
    example_e_2,
    orders_workload,
)


@pytest.fixture(scope="session")
def ex41():
    return example_4_1()


@pytest.fixture(scope="session")
def ex42():
    return example_4_2()


@pytest.fixture(scope="session")
def ex43():
    return example_4_3()


@pytest.fixture(scope="session")
def ex46():
    return example_4_6()


@pytest.fixture(scope="session")
def exE1():
    return example_e_1()


@pytest.fixture(scope="session")
def exE2():
    return example_e_2()


@pytest.fixture(scope="session")
def orders():
    return orders_workload()
