"""Experiment E5 — uniqueness of sound chase and the Σ^max algorithms
(Theorems 5.1 / 5.3, Algorithms Max-Bag-Σ-Subset and Max-Bag-Set-Σ-Subset).

Reproduces, on Example 4.1:

* Σ^max_B(Q4, Σ) drops σ3 and σ4; Σ^max_BS(Q4, Σ) drops only σ4;
* the proper-inclusion chain Σ^max_B ⊂ Σ^max_BS ⊂ Σ (Proposition 5.2);
* the canonical database of the sound-chase result satisfies the computed
  subset (the defining property of Theorem 5.3);
* query dependence: for Q(X) :- p(X,Y), u(X,Z) the subset keeps σ4.
"""

from __future__ import annotations

from _util import record

from repro.chase import max_bag_set_sigma_subset, max_bag_sigma_subset
from repro.database import canonical_database, satisfies_all
from repro.datalog import parse_query


def bench_max_bag_sigma_subset(benchmark, ex41):
    result = benchmark(lambda: max_bag_sigma_subset(ex41.q4, ex41.dependencies))
    removed = sorted(d.name for d in result.removed)
    assert removed == ["sigma3", "sigma4"]
    canonical = canonical_database(result.chase_result.query).instance
    assert satisfies_all(canonical, list(result.subset), check_set_valuedness=False)
    record(
        benchmark,
        removed=removed,
        paper_expected=["sigma3", "sigma4"],
        kept=sorted(d.name for d in result.subset),
    )


def bench_max_bag_set_sigma_subset(benchmark, ex41):
    result = benchmark(lambda: max_bag_set_sigma_subset(ex41.q4, ex41.dependencies))
    removed = sorted(d.name for d in result.removed)
    assert removed == ["sigma4"]
    record(benchmark, removed=removed, paper_expected=["sigma4"])


def bench_proposition_5_2_chain(benchmark, ex41):
    def run():
        bag = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        bag_set = max_bag_set_sigma_subset(ex41.q4, ex41.dependencies)
        return {
            "sigma_max_B_size": len(bag.subset),
            "sigma_max_BS_size": len(bag_set.subset),
            "sigma_size": len(ex41.dependencies),
            "proper_chain": len(bag.subset) < len(bag_set.subset) < len(ex41.dependencies),
        }

    result = benchmark(run)
    assert result["proper_chain"] is True
    record(benchmark, measured=result, paper_expected="Σ^max_B ⊂ Σ^max_BS ⊂ Σ")


def bench_query_dependence(benchmark, ex41):
    other = parse_query("Q(X) :- p(X,Y), u(X,Z)")

    def run():
        return sorted(d.name for d in max_bag_sigma_subset(other, ex41.dependencies).removed)

    removed = benchmark(run)
    assert "sigma4" not in removed
    record(
        benchmark,
        removed_for_other_query=removed,
        paper_expected="sigma4 is satisfied for Q(X) :- p(X,Y), u(X,Z) (Section 5.3)",
    )
