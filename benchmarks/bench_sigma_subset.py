"""Experiment E5 — uniqueness of sound chase and the Σ^max algorithms
(Theorems 5.1 / 5.3, Algorithms Max-Bag-Σ-Subset and Max-Bag-Set-Σ-Subset).

Reproduces, on Example 4.1:

* Σ^max_B(Q4, Σ) drops σ3 and σ4; Σ^max_BS(Q4, Σ) drops only σ4;
* the proper-inclusion chain Σ^max_B ⊂ Σ^max_BS ⊂ Σ (Proposition 5.2);
* the canonical database of the sound-chase result satisfies the computed
  subset (the defining property of Theorem 5.3);
* query dependence: for Q(X) :- p(X,Y), u(X,Z) the subset keeps σ4.

The **Algorithm 1/2 tiers** (``bench_sigma_subset_cold_alg1``) measure the
whole pipeline — terminal sound chase plus the per-dependency soundness scan
— on the accelerated path (binding-level probes, one shared body index and
per-Σ plan-cache view per scan) against the frozen reference engines
(:mod:`repro.chase.reference` chase + a scan assembled from its building
blocks).  Step records must stay byte-identical and the computed Σ^max
equal; the large tier asserts the ≥1.3x speedup floor of the binding-level
rework and CI trend-gates the small tier's counters.
"""

from __future__ import annotations

import time

import pytest
from _util import record, reference_sound_step_verdicts

from repro.chase import max_bag_set_sigma_subset, max_bag_sigma_subset
from repro.chase.plans import PlanCache
from repro.chase.reference import sound_chase_reference
from repro.database import canonical_database, satisfies_all
from repro.datalog import parse_query
from repro.paperlib import chain_workload, clique_workload, star_workload
from repro.semantics import Semantics

# Algorithm 1/2 tiers: (workload, constructor arguments).  The chain query
# is chased from its first subgoal so the inclusion dependencies regenerate
# the whole chain (the full query is already chase-terminal).
ALG1_TIERS = {
    "small": (("star", (8, 8)), ("chain", (12,))),
    "large": (("star", (20, 20)), ("clique", (8, 6)), ("chain", (24,))),
}
#: Minimum accelerated-vs-reference speedup asserted on the large tier (the
#: binding-level kernel bar; ~4x measured on a quiet machine).
ALG1_SPEEDUP_FLOOR = 1.3
ALG1_MAX_STEPS = 5000


def _alg1_cases(tier: str):
    cases = []
    for label, parameters in ALG1_TIERS[tier]:
        if label == "chain":
            workload = chain_workload(*parameters)
            query = workload.query.with_body(workload.query.body[:1])
        elif label == "star":
            workload = star_workload(*parameters)
            query = workload.query
        else:
            workload = clique_workload(*parameters)
            query = workload.query
        cases.append((label, query, workload.dependencies))
    return cases


def _step_records(result) -> list[str]:
    return [str(step) for step in result.steps] + [str(result.query)]


@pytest.mark.parametrize("tier", list(ALG1_TIERS))
def bench_sigma_subset_cold_alg1(benchmark, tier):
    """Max-Bag-Σ-Subset end to end: accelerated vs frozen reference, per tier."""
    cases = _alg1_cases(tier)

    def run_accelerated():
        return [
            max_bag_sigma_subset(
                query, deps, ALG1_MAX_STEPS, plan_cache=PlanCache()
            )
            for _, query, deps in cases
        ]

    per_case = {}
    accelerated_total = reference_total = 0.0
    for label, query, deps in cases:
        started = time.perf_counter()
        fast = max_bag_sigma_subset(query, deps, ALG1_MAX_STEPS, plan_cache=PlanCache())
        accelerated_seconds = time.perf_counter() - started
        started = time.perf_counter()
        slow_chased = sound_chase_reference(
            query, deps, Semantics.BAG, ALG1_MAX_STEPS
        )
        slow_verdicts = reference_sound_step_verdicts(
            slow_chased.query, deps, Semantics.BAG, ALG1_MAX_STEPS
        )
        reference_seconds = time.perf_counter() - started
        assert _step_records(fast.chase_result) == _step_records(slow_chased), (
            f"{tier}/{label}: chase step records diverge from the reference"
        )
        slow_removed = sorted(
            dependency.name
            for dependency, sound in zip(deps, slow_verdicts)
            if not sound
        )
        assert sorted(d.name for d in fast.removed) == slow_removed, (
            f"{tier}/{label}: Σ^max diverges from the reference scan"
        )
        accelerated_total += accelerated_seconds
        reference_total += reference_seconds
        profile = fast.scan_profile
        per_case[label] = {
            "accelerated_seconds": round(accelerated_seconds, 6),
            "reference_seconds": round(reference_seconds, 6),
            "speedup": round(reference_seconds / accelerated_seconds, 2),
            "chase_steps": fast.chase_result.step_count,
            "removed": len(fast.removed),
            "extension_probes": profile.extension_probes,
            "dicts_avoided": profile.dicts_avoided,
            "subset_plans_reused": profile.subset_plans_reused,
        }

    speedup = reference_total / accelerated_total
    benchmark(run_accelerated)
    record(
        benchmark,
        tier=tier,
        cold_speedup=round(speedup, 2),
        accelerated_seconds=round(accelerated_total, 6),
        reference_seconds=round(reference_total, 6),
        scan_extension_probes=sum(c["extension_probes"] for c in per_case.values()),
        scan_plans_reused=sum(c["subset_plans_reused"] for c in per_case.values()),
        workloads=per_case,
    )
    if tier == "large":
        assert speedup >= ALG1_SPEEDUP_FLOOR, (
            f"large-tier Algorithm 1 speedup regressed to {speedup:.2f}x "
            f"(floor {ALG1_SPEEDUP_FLOOR}x)"
        )


def bench_max_bag_sigma_subset(benchmark, ex41):
    result = benchmark(lambda: max_bag_sigma_subset(ex41.q4, ex41.dependencies))
    removed = sorted(d.name for d in result.removed)
    assert removed == ["sigma3", "sigma4"]
    canonical = canonical_database(result.chase_result.query).instance
    assert satisfies_all(canonical, list(result.subset), check_set_valuedness=False)
    record(
        benchmark,
        removed=removed,
        paper_expected=["sigma3", "sigma4"],
        kept=sorted(d.name for d in result.subset),
    )


def bench_max_bag_set_sigma_subset(benchmark, ex41):
    result = benchmark(lambda: max_bag_set_sigma_subset(ex41.q4, ex41.dependencies))
    removed = sorted(d.name for d in result.removed)
    assert removed == ["sigma4"]
    record(benchmark, removed=removed, paper_expected=["sigma4"])


def bench_proposition_5_2_chain(benchmark, ex41):
    def run():
        bag = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        bag_set = max_bag_set_sigma_subset(ex41.q4, ex41.dependencies)
        return {
            "sigma_max_B_size": len(bag.subset),
            "sigma_max_BS_size": len(bag_set.subset),
            "sigma_size": len(ex41.dependencies),
            "proper_chain": len(bag.subset) < len(bag_set.subset) < len(ex41.dependencies),
        }

    result = benchmark(run)
    assert result["proper_chain"] is True
    record(benchmark, measured=result, paper_expected="Σ^max_B ⊂ Σ^max_BS ⊂ Σ")


def bench_query_dependence(benchmark, ex41):
    other = parse_query("Q(X) :- p(X,Y), u(X,Z)")

    def run():
        return sorted(d.name for d in max_bag_sigma_subset(other, ex41.dependencies).removed)

    removed = benchmark(run)
    assert "sigma4" not in removed
    record(
        benchmark,
        removed_for_other_query=removed,
        paper_expected="sigma4 is satisfied for Q(X) :- p(X,Y), u(X,Z) (Section 5.3)",
    )
