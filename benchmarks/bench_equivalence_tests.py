"""Experiment E7 — Σ-aware equivalence tests (Theorems 6.1 / 6.2, Prop. 6.1).

Times the three decision procedures — dispatched through the unified
:class:`repro.Session` engine — on the Example 4.1 query pairs and on chain
queries of growing size, and records the verdict matrix (which is the
reproduced artefact: who is equivalent to whom under which semantics).

Each timed run builds a fresh Session, so the numbers measure the cold
(chase-included) decision cost; the warm-cache path is measured separately
in ``bench_session_cache.py``.
"""

from __future__ import annotations

import pytest
from _util import record

from repro.paperlib import chain_workload
from repro.semantics import Semantics
from repro.session import Session

# Expected verdict matrix for (Qi vs Q4) of Example 4.1 under the three semantics.
_EXPECTED = {
    "Q1": {"set": True, "bag-set": False, "bag": False},
    "Q2": {"set": True, "bag-set": True, "bag": False},
    "Q3": {"set": True, "bag-set": True, "bag": True},
}


@pytest.mark.parametrize(
    "semantics", (Semantics.SET, Semantics.BAG_SET, Semantics.BAG)
)
def bench_verdict_matrix_example_4_1(benchmark, ex41, semantics):
    pairs = {"Q1": ex41.q1, "Q2": ex41.q2, "Q3": ex41.q3}

    def verdicts():
        session = Session(dependencies=ex41.dependencies)
        return {
            name: bool(session.decide(query, ex41.q4, semantics))
            for name, query in pairs.items()
        }

    result = benchmark(verdicts)
    expected = {name: _EXPECTED[name][str(semantics)] for name in pairs}
    assert result == expected
    record(benchmark, semantics=str(semantics), verdicts=result, paper_expected=expected)


@pytest.mark.parametrize("length", (2, 4, 6))
def bench_equivalence_cost_vs_query_size(benchmark, length):
    """Cost of the bag-set test on chain queries: the prefix (single subgoal)
    vs the full chain — equivalent because the inclusions regenerate the rest."""
    workload = chain_workload(length)
    prefix = workload.query.with_body(workload.query.body[:1])
    verdict = benchmark(
        lambda: bool(
            Session(dependencies=workload.dependencies).decide(
                prefix, workload.query, Semantics.BAG_SET
            )
        )
    )
    assert verdict is True
    record(benchmark, chain_length=length, equivalent=verdict)


def bench_negative_case_cost(benchmark, ex41):
    """The typically slower direction: proving *in*equivalence (Q1 vs Q4, bag)."""
    verdict = benchmark(
        lambda: bool(
            Session(dependencies=ex41.dependencies).decide(
                ex41.q1, ex41.q4, Semantics.BAG
            )
        )
    )
    assert verdict is False
    record(benchmark, equivalent=verdict, paper_expected=False)


def bench_decide_all_shares_chases(benchmark, ex41):
    """``decide_all`` through the Session cache: 2 queries × 3 semantics =
    exactly 6 chases, with the Proposition 6.1 chain asserted on the verdicts."""

    def run():
        session = Session(dependencies=ex41.dependencies)
        verdicts = session.decide_all(ex41.q1, ex41.q4)
        stats = session.cache_stats()
        return {str(k): bool(v) for k, v in verdicts.items()}, stats.misses, stats.hits

    (verdicts, misses, hits) = benchmark(run)
    assert verdicts == {"bag": False, "bag-set": False, "set": True}
    assert misses == 6  # each query chased exactly once per semantics
    record(benchmark, verdicts=verdicts, chases=misses, cache_hits=hits)
