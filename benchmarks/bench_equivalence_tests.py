"""Experiment E7 — Σ-aware equivalence tests (Theorems 6.1 / 6.2, Prop. 6.1).

Times the three decision procedures on the Example 4.1 query pairs and on
chain queries of growing size, and records the verdict matrix (which is the
reproduced artefact: who is equivalent to whom under which semantics).
"""

from __future__ import annotations

import pytest
from _util import record

from repro.equivalence import (
    equivalent_under_dependencies_bag,
    equivalent_under_dependencies_bag_set,
    equivalent_under_dependencies_set,
)
from repro.paperlib import chain_workload
from repro.semantics import Semantics

_TESTS = {
    Semantics.SET: equivalent_under_dependencies_set,
    Semantics.BAG_SET: equivalent_under_dependencies_bag_set,
    Semantics.BAG: equivalent_under_dependencies_bag,
}

# Expected verdict matrix for (Qi vs Q4) of Example 4.1 under the three semantics.
_EXPECTED = {
    "Q1": {"set": True, "bag-set": False, "bag": False},
    "Q2": {"set": True, "bag-set": True, "bag": False},
    "Q3": {"set": True, "bag-set": True, "bag": True},
}


@pytest.mark.parametrize("semantics", list(_TESTS))
def bench_verdict_matrix_example_4_1(benchmark, ex41, semantics):
    pairs = {"Q1": ex41.q1, "Q2": ex41.q2, "Q3": ex41.q3}

    def verdicts():
        return {
            name: _TESTS[semantics](query, ex41.q4, ex41.dependencies)
            for name, query in pairs.items()
        }

    result = benchmark(verdicts)
    expected = {name: _EXPECTED[name][str(semantics)] for name in pairs}
    assert result == expected
    record(benchmark, semantics=str(semantics), verdicts=result, paper_expected=expected)


@pytest.mark.parametrize("length", (2, 4, 6))
def bench_equivalence_cost_vs_query_size(benchmark, length):
    """Cost of the bag-set test on chain queries: the prefix (single subgoal)
    vs the full chain — equivalent because the inclusions regenerate the rest."""
    workload = chain_workload(length)
    prefix = workload.query.with_body(workload.query.body[:1])
    verdict = benchmark(
        lambda: equivalent_under_dependencies_bag_set(
            prefix, workload.query, workload.dependencies
        )
    )
    assert verdict is True
    record(benchmark, chain_length=length, equivalent=verdict)


def bench_negative_case_cost(benchmark, ex41):
    """The typically slower direction: proving *in*equivalence (Q1 vs Q4, bag)."""
    verdict = benchmark(
        lambda: equivalent_under_dependencies_bag(ex41.q1, ex41.q4, ex41.dependencies)
    )
    assert verdict is False
    record(benchmark, equivalent=verdict, paper_expected=False)
