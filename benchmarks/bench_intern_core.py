"""Experiment E14 — throughput of the interned hash-consed core representation.

Measures the three operations the representation refactor targets, on a
synthetic bulk workload shaped like what the fuzz generator and the front
ends produce (many atoms over a small vocabulary of predicates, variables,
and constants):

* **construction** — building terms, atoms, and queries; interned terms are
  dictionary hits, atom signatures/hashes are precomputed once;
* **hashing** — hashing atoms and full queries (every canonicalization,
  posting list, and cache key bottoms out here); hashes are cached, so a
  re-hash is a slot read;
* **structural keys** — ``structural_key()`` throughput split cold (fresh
  query objects, the full normal-form renaming) vs warm (memoized per query
  object — the chase-cache lookup path).

Deterministic sanity assertions (equality ⇔ identity, memo identity) ride
along so the benchmark doubles as a smoke test under ``--benchmark-disable``.
"""

from __future__ import annotations

from _util import record

from repro.core.atoms import Atom
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

_PREDICATES = [f"p{i}" for i in range(8)]
_VARIABLE_NAMES = [f"X{i}" for i in range(12)]
_CONSTANT_VALUES = [f"c{i}" for i in range(6)] + list(range(6))
_ATOMS_PER_QUERY = 10
_QUERIES_PER_ROUND = 50


def _build_queries() -> list[ConjunctiveQuery]:
    """Fresh query objects over the shared vocabulary (terms re-intern)."""
    queries = []
    for q in range(_QUERIES_PER_ROUND):
        body = []
        for i in range(_ATOMS_PER_QUERY):
            predicate = _PREDICATES[(q + i) % len(_PREDICATES)]
            terms = [
                _VARIABLE_NAMES[(q + i + k) % len(_VARIABLE_NAMES)]
                if (i + k) % 3 else _CONSTANT_VALUES[(q + k) % len(_CONSTANT_VALUES)]
                for k in range(3)
            ]
            body.append(Atom(predicate, terms))
        head_variable = _VARIABLE_NAMES[(q + 1) % len(_VARIABLE_NAMES)]
        queries.append(ConjunctiveQuery(f"Q{q % 5}", [head_variable], body))
    return queries


def bench_construction_throughput(benchmark):
    """Bulk construction: 50 queries × 10 atoms × 3 terms per round."""
    queries = benchmark(_build_queries)
    assert len(queries) == _QUERIES_PER_ROUND
    # Interning invariant: the whole workload's terms collapsed to the
    # vocabulary's singletons.
    for atom in queries[0].body:
        for term in atom.terms:
            if isinstance(term, Variable):
                assert Variable(term.name) is term
            else:
                assert Constant(term.value) is term
    total_atoms = sum(len(q.body) for q in queries)
    record(
        benchmark,
        queries=len(queries),
        atoms=total_atoms,
        terms=3 * total_atoms,
    )


def bench_hashing_throughput(benchmark):
    """Hashing every atom and query of the workload (hashes are cached)."""
    queries = _build_queries()
    atoms = [atom for query in queries for atom in query.body]

    def hash_everything():
        total = 0
        for atom in atoms:
            total ^= hash(atom)
        for query in queries:
            total ^= hash(query)
        return total

    first = hash_everything()
    assert benchmark(hash_everything) == first  # hashes are stable
    record(benchmark, atoms=len(atoms), queries=len(queries))


def bench_structural_key_cold(benchmark):
    """Cold structural keys: fresh query objects each round (full renaming)."""

    def cold_keys():
        return [query.structural_key() for query in _build_queries()]

    keys = benchmark(cold_keys)
    assert len(keys) == _QUERIES_PER_ROUND
    record(benchmark, queries=_QUERIES_PER_ROUND)


def bench_structural_key_warm(benchmark):
    """Warm structural keys: the per-query memo (the cache-lookup path)."""
    queries = _build_queries()
    expected = [query.structural_key() for query in queries]

    def warm_keys():
        return [query.structural_key() for query in queries]

    keys = benchmark(warm_keys)
    # The memo returns the very same tuple objects on every call.
    assert all(key is first for key, first in zip(keys, expected))
    record(benchmark, queries=_QUERIES_PER_ROUND)
