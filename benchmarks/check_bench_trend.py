"""Diff a pytest-benchmark JSON against a committed baseline and gate CI.

Usage::

    python benchmarks/check_bench_trend.py \
        --current BENCH_chase_scaling.json \
        --baseline benchmarks/baselines/BENCH_chase_scaling.json

The baseline file pins, per benchmark name, a set of metrics with the value
recorded when the baseline was committed, the direction in which the metric
is good (``higher`` or ``lower``), and optionally a per-metric tolerance.
A run **fails** (exit code 1) when any pinned metric regresses by more than
the tolerance (default 25%) against its baseline value, and when a pinned
benchmark or metric is missing from the current JSON — silent disappearance
of a metric is itself a regression.

Metrics are looked up by dotted path inside each benchmark entry
(``extra_info.cold_speedup``, ``stats.mean``, ...).  Only *pinned* metrics
are compared: the pinned set is deliberately dominated by ratios and counts
(speedups, steps, coverage counters) rather than absolute seconds, so the
gate stays meaningful on noisy shared CI runners; the absolute-time floors
live in the benchmarks' own assertions.

Baseline format::

    {
      "pinned": {
        "<benchmark name>": {
          "<dotted.metric.path>": {"value": 8.0, "direction": "higher"},
          "<other.metric>": {"value": 21, "direction": "higher", "tolerance": 0.0}
        }
      }
    }

Two escape hatches exist for tiers that cannot run everywhere:

* a benchmark pinned with ``"_optional": true`` (a meta key next to its
  metrics) may be **absent from the current run** without failing the gate —
  CI deselects hardware-bound tiers with ``-k``, and the gate prints a
  skip notice instead of a failure.  When the benchmark *did* run, its pins
  are enforced exactly like any other.
* a metric pinned with ``"optional": true`` may be absent from its
  benchmark's entry — for values the benchmark only records when the
  machine qualifies (e.g. a scaling ratio that is meaningless on two
  cores).  Again: present means enforced.

Everything non-optional that disappears is still a hard failure — silent
loss of a gated metric is itself a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

DEFAULT_TOLERANCE = 0.25


def load_benchmarks(path: Path) -> dict[str, dict[str, Any]]:
    """The benchmark entries of a pytest-benchmark JSON, keyed by name."""
    data = json.loads(path.read_text())
    return {bench["name"]: bench for bench in data.get("benchmarks", [])}


def metric_value(bench: dict[str, Any], dotted_path: str) -> Any:
    """Resolve ``extra_info.cold_speedup``-style paths; None when absent."""
    node: Any = bench
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_metric(
    name: str,
    path: str,
    pin: dict[str, Any],
    current: Any,
) -> str | None:
    """One pinned metric's verdict: None when fine, a message when failing."""
    label = f"{name} :: {path}"
    if current is None:
        return f"{label}: metric missing from the current run"
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        return f"{label}: current value {current!r} is not numeric"
    baseline = float(pin["value"])
    direction = pin.get("direction", "higher")
    tolerance = float(pin.get("tolerance", DEFAULT_TOLERANCE))
    if direction == "higher":
        floor = baseline * (1.0 - tolerance)
        if current < floor:
            return (
                f"{label}: {current} regressed more than {tolerance:.0%} below "
                f"baseline {baseline} (floor {floor:.6g})"
            )
    elif direction == "lower":
        ceiling = baseline * (1.0 + tolerance)
        if current > ceiling:
            return (
                f"{label}: {current} regressed more than {tolerance:.0%} above "
                f"baseline {baseline} (ceiling {ceiling:.6g})"
            )
    else:
        return f"{label}: unknown direction {direction!r} in the baseline"
    return None


def check(current_path: Path, baseline_path: Path) -> list[str]:
    """Every pinned-metric failure of *current* against *baseline*.

    Skip notices for optional benchmarks/metrics that did not run go to
    stdout; only genuine regressions land in the returned list.
    """
    baseline = json.loads(baseline_path.read_text())
    benchmarks = load_benchmarks(current_path)
    failures: list[str] = []
    pinned = baseline.get("pinned", {})
    if not pinned:
        failures.append(f"{baseline_path}: no pinned metrics — baseline is empty")
    for name, metrics in pinned.items():
        pins = {path: pin for path, pin in metrics.items()
                if not path.startswith("_")}
        bench = benchmarks.get(name)
        if bench is None:
            if metrics.get("_optional"):
                print(f"  note: optional benchmark {name} not in this run — "
                      f"{len(pins)} pin(s) skipped")
                continue
            failures.append(f"{name}: benchmark missing from the current run")
            continue
        for path, pin in pins.items():
            current = metric_value(bench, path)
            if current is None and pin.get("optional"):
                print(f"  note: optional metric {name} :: {path} absent "
                      f"from this run — skipped")
                continue
            message = check_metric(name, path, pin, current)
            if message is not None:
                failures.append(message)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, type=Path,
                        help="benchmark JSON produced by this run")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed baseline JSON with pinned metrics")
    args = parser.parse_args(argv)
    failures = check(args.current, args.baseline)
    if failures:
        print(f"benchmark trend check FAILED ({args.current} vs {args.baseline}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"benchmark trend check OK ({args.current} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
