"""Experiment E13 — differential fuzz campaign throughput.

The fuzz oracle is the scenario-diversity gate of the repository: every
generated case pays for six chases (three semantics × accelerated and
reference engines), the Proposition 6.1 verdict chain through a Session,
and both front-end round trips.  This benchmark pins the campaign's
throughput (cases/second) and its health — zero mismatches on the fixed
seed, and a verdict mix that is neither all-equivalent nor all-inequivalent
(a generator drifting to one extreme stops testing the decision procedures).
"""

from __future__ import annotations

from _util import record

from repro.fuzz import generate_cases, run_campaign, run_oracle

_CASES = 60
_SEED = 0


def bench_fuzz_campaign_small(benchmark):
    """A 60-case campaign, batch pipeline included, must stay mismatch free."""
    result = benchmark(lambda: run_campaign(_SEED, _CASES))
    assert result.ok, [failure.summary() for failure in result.failures]
    assert result.passed == _CASES
    equivalents = sum(
        count for key, count in result.verdict_counts.items() if key.endswith("=eq")
    )
    inequivalents = sum(
        count for key, count in result.verdict_counts.items() if key.endswith("=ne")
    )
    assert equivalents > 0 and inequivalents > 0  # generator health
    throughput = _CASES / result.wall_time if result.wall_time else float("inf")
    record(
        benchmark,
        cases=_CASES,
        seed=_SEED,
        cases_per_second=round(throughput, 1),
        budget_exhausted=result.budget_exhausted,
        verdict_counts=dict(sorted(result.verdict_counts.items())),
    )


def bench_fuzz_oracle_single_case(benchmark):
    """Per-case oracle cost: the unit the soak multiplies by 5000."""
    cases = generate_cases(_SEED, 10)

    def oracle_pass():
        return [run_oracle(case) for case in cases]

    reports = benchmark(oracle_pass)
    assert all(report.ok for report in reports)
    record(benchmark, cases_per_call=len(cases))


def bench_fuzz_generation_only(benchmark):
    """Generation cost alone (no oracle): the ceiling on campaign throughput."""
    cases = benchmark(lambda: generate_cases(_SEED, 200))
    assert len(cases) == 200
    assert all(case.has_consistent_arities() for case in cases)
    record(benchmark, cases_per_call=200)
