"""Static analyzer throughput and verdict mix (the ``repro check`` engine).

The analyzer sits on two latency-sensitive paths: ``Session(precheck=...)``
pays it on every construction, and the fuzz oracle pays it on every case.
This benchmark times full analyzer passes over a fixed fuzz-corpus of
dependency sets and pins the *deterministic* outputs — how many Σ certify,
how many diagnostics fire, and that every certificate machine-verifies —
which is what the CI trend gate checks (wall-clock on shared runners is
noise; a changed verdict mix is a behaviour change).
"""

from __future__ import annotations

from _util import record

from repro.analysis.static import analyze
from repro.dependencies.weak_acyclicity import is_weakly_acyclic
from repro.fuzz import generate_dependencies
from repro.paperlib import example_4_1

_SEED = 0
_BLOCKS = 50


def _corpus():
    return [list(generate_dependencies(_SEED, block)[0]) for block in range(_BLOCKS)]


def bench_analyze_fuzz_corpus(benchmark):
    """Full analyzer (all passes + certification) over 50 generated Σ."""
    corpus = _corpus()

    def run():
        return [analyze(sigma) for sigma in corpus]

    reports = benchmark(run)
    certified = sum(report.certified for report in reports)
    diagnostics = sum(len(report.diagnostics) for report in reports)
    # The analyzer verdict must agree with the SCC check on every Σ, and
    # each produced certificate must machine-verify.
    for sigma, report in zip(corpus, reports):
        assert report.certified == is_weakly_acyclic(sigma)
        if report.certified:
            assert report.certificate.verify(sigma)
        else:
            assert report.witness.verify(sigma)
    record(
        benchmark,
        sigmas=_BLOCKS,
        certified=certified,
        uncertified=_BLOCKS - certified,
        diagnostics=diagnostics,
    )


def bench_analyze_without_subsumption(benchmark):
    """The precheck configuration: subsumption (the only super-linear pass) off."""
    corpus = _corpus()
    reports = benchmark(lambda: [analyze(s, subsumption=False) for s in corpus])
    assert len(reports) == _BLOCKS
    assert all(
        "dependency-subsumed" not in {d.code for d in report.diagnostics}
        for report in reports
    )
    record(benchmark, sigmas=_BLOCKS)


def bench_certificate_budget_seeding(benchmark):
    """Certificate bound computation for Example 4.1 — the Session hot path."""
    example = example_4_1()
    report = analyze(example.dependencies)
    assert report.certified

    def seed_budgets():
        return [
            report.certificate.step_budget_for(query)
            for query in (example.q1, example.q4)
        ]

    budgets = benchmark(seed_budgets)
    # The budgets are astronomically loose by design; what matters is that
    # they exist, are positive, and dominate the depth bound.
    assert all(budget > 0 for budget in budgets)
    assert budgets[0] >= report.certificate.chase_depth_bound(example.q1)
    record(benchmark, certified=1, max_rank=report.certificate.max_rank)
