"""Reporting helper shared by the benchmark modules."""

from __future__ import annotations


def record(benchmark, **values) -> None:
    """Store reproduced values on the benchmark for reporting.

    The values end up in ``benchmark.extra_info`` and therefore in the JSON
    produced by ``--benchmark-json`` as well as in the verbose console
    report, which is how EXPERIMENTS.md's "measured" column is filled in.
    """
    for key, value in values.items():
        benchmark.extra_info[key] = value
