"""Reporting and reference-path helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.chase.reference import (
    _is_assignment_fixing_for as _reference_is_assignment_fixing_for,
    _iter_applicable_tgd_homomorphisms as _reference_tgd_triggers,
)
from repro.chase.sound_chase import _split
from repro.dependencies.base import EGD, TGD
from repro.dependencies.regularize import regularize_dependencies
from repro.semantics import Semantics


def record(benchmark, **values) -> None:
    """Store reproduced values on the benchmark for reporting.

    The values end up in ``benchmark.extra_info`` and therefore in the JSON
    produced by ``--benchmark-json`` as well as in the verbose console
    report, which is how EXPERIMENTS.md's "measured" column is filled in.
    """
    for key, value in values.items():
        benchmark.extra_info[key] = value


def reference_sound_step_verdicts(query, dependencies, semantics, max_steps):
    """``is_sound_chase_step`` per dependency, on the frozen reference path.

    Assembled strictly from :mod:`repro.chase.reference` building blocks —
    plain backtracking trigger enumeration, from-scratch Definition 4.3 test
    chases, per-call regularization, no index / plan / memo sharing — so the
    binding-level benchmarks can measure the accelerated scan against the
    pre-kernel cost profile with identical verdict semantics (Theorems
    4.1/4.3: egds and set semantics vacuously sound; a non-regularized tgd
    is checked through its regularized components).
    """
    items, set_valued = _split(dependencies)
    items = regularize_dependencies(items)
    verdicts = []
    for dependency in dependencies:
        if isinstance(dependency, EGD) or semantics is Semantics.SET:
            verdicts.append(True)
            continue
        components = [
            d for d in regularize_dependencies([dependency]) if isinstance(d, TGD)
        ]
        sound = True
        for component in components:
            if semantics is Semantics.BAG and not all(
                atom.predicate in set_valued for atom in component.conclusion
            ):
                if next(_reference_tgd_triggers(query, component), None) is not None:
                    sound = False
                    break
                continue
            for hom in _reference_tgd_triggers(query, component):
                if not _reference_is_assignment_fixing_for(
                    query, component, hom, items, max_steps
                ):
                    sound = False
                    break
            if not sound:
                break
        verdicts.append(sound)
    return verdicts
