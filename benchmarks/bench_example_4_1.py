"""Experiment E1 — Example 4.1, the paper's motivating example.

Reproduces, and times, the example's artefacts:

* the sound chase results of Q4 under bag, bag-set, and set semantics
  ((Q4)Σ,B ≅ Q3, (Q4)Σ,BS ≅ Q2, (Q4)Σ,S ≡S Q1),
* the equivalence verdicts Q1 ≡Σ,S Q4 but Q1 ≢Σ,BS Q4 and Q1 ≢Σ,B Q4,
* the counterexample-database multiplicities (Q4(D,B) = {{(1)}} vs
  Q1(D,B) = {{(1),(1)}}).
"""

from __future__ import annotations

from _util import record

from repro.chase import sound_chase
from repro.core import are_isomorphic, is_set_equivalent
from repro.evaluation import evaluate
from repro.semantics import Semantics
from repro.session import Session


def bench_sound_chase_bag(benchmark, ex41):
    result = benchmark(lambda: sound_chase(ex41.q4, ex41.dependencies, Semantics.BAG))
    assert are_isomorphic(result.query, ex41.q3)
    record(
        benchmark,
        chase_result=str(result.query),
        paper_expected="Q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)",
        matches_paper=True,
        chase_steps=result.step_count,
    )


def bench_sound_chase_bag_set(benchmark, ex41):
    result = benchmark(
        lambda: sound_chase(ex41.q4, ex41.dependencies, Semantics.BAG_SET)
    )
    assert are_isomorphic(result.query, ex41.q2)
    record(
        benchmark,
        chase_result=str(result.query),
        paper_expected="Q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)",
        matches_paper=True,
    )


def bench_set_chase(benchmark, ex41):
    result = benchmark(lambda: sound_chase(ex41.q4, ex41.dependencies, Semantics.SET))
    assert is_set_equivalent(result.query, ex41.q1)
    record(
        benchmark,
        chase_result=str(result.query),
        paper_expected="set-equivalent to Q1",
        matches_paper=True,
    )


def bench_equivalence_verdicts(benchmark, ex41):
    def verdicts():
        session = Session(dependencies=ex41.dependencies)
        return {
            str(semantics): bool(verdict)
            for semantics, verdict in session.decide_all(ex41.q1, ex41.q4).items()
        }

    result = benchmark(verdicts)
    assert result == {"set": True, "bag-set": False, "bag": False}
    record(benchmark, verdicts=result, paper_expected={"set": True, "bag-set": False, "bag": False})


def bench_counterexample_multiplicities(benchmark, ex41):
    def multiplicities():
        return {
            "Q4(D,B)": evaluate(ex41.q4, ex41.counterexample, "bag").multiplicity((1,)),
            "Q1(D,B)": evaluate(ex41.q1, ex41.counterexample, "bag").multiplicity((1,)),
            "Q1(D,BS)": evaluate(ex41.q1, ex41.counterexample, "bag-set").multiplicity((1,)),
        }

    result = benchmark(multiplicities)
    assert result == {"Q4(D,B)": 1, "Q1(D,B)": 2, "Q1(D,BS)": 2}
    record(benchmark, multiplicities=result, paper_expected={"Q4(D,B)": 1, "Q1(D,B)": 2, "Q1(D,BS)": 2})
