"""Experiment E2 — assignment-fixing determination (Examples 4.2 / 4.3 / 5.1).

Reproduces the classification of tgds as assignment fixing (Definition 4.3)
vs key based (Definition 5.1), including the query dependence of the notion
(Example 5.1), and measures the cost of the test-query chase that the
determination requires — the ablation called out in DESIGN.md (assignment
fixing is strictly more general than key based but needs a chase per check).

Note on Examples 4.3 / 4.7: the printed example is internally inconsistent
(see EXPERIMENTS.md); carried to termination, σ4 is assignment fixing w.r.t.
Q as well, which is what this benchmark records.
"""

from __future__ import annotations

from _util import record

from repro.chase import compare_with_key_based, is_assignment_fixing
from repro.dependencies import TGD, regularize_tgd


def _tgd(dependencies, name) -> TGD:
    return next(d for d in dependencies if d.name == name)


def bench_example_4_2_positive(benchmark, ex42):
    sigma1 = _tgd(ex42.dependencies, "sigma1")
    verdict = benchmark(
        lambda: is_assignment_fixing(ex42.query, sigma1, ex42.dependencies)
    )
    assert verdict is True
    record(benchmark, assignment_fixing=verdict, paper_expected=True)


def bench_example_5_1_query_dependence(benchmark, ex43):
    sigma4 = _tgd(ex43.dependencies, "sigma4")

    def classify():
        return {
            "w.r.t. Q": is_assignment_fixing(ex43.query, sigma4, ex43.dependencies),
            "w.r.t. Q'": is_assignment_fixing(
                ex43.query_prime, sigma4, ex43.dependencies
            ),
        }

    result = benchmark(classify)
    assert result["w.r.t. Q'"] is True
    record(
        benchmark,
        verdicts=result,
        paper_expected={"w.r.t. Q": False, "w.r.t. Q'": True},
        deviation="w.r.t. Q differs from the printed example; see EXPERIMENTS.md (E2)",
    )


def bench_example_4_6_more_general_than_key_based(benchmark, ex46):
    nu1 = _tgd(ex46.dependencies, "nu1")
    result = benchmark(
        lambda: compare_with_key_based(ex46.query, nu1, ex46.dependencies)
    )
    assert result == {"assignment_fixing": True, "key_based": False}
    record(benchmark, comparison=result, paper_expected={"assignment_fixing": True, "key_based": False})


def bench_example_4_1_component_classification(benchmark, ex41):
    def classify():
        verdicts = {}
        for dependency in ex41.dependencies:
            if not isinstance(dependency, TGD):
                continue
            for part in regularize_tgd(dependency):
                label = f"{dependency.name}/{part.conclusion[0].predicate}"
                verdicts[label] = compare_with_key_based(
                    ex41.q4, part, ex41.dependencies
                )
        return verdicts

    result = benchmark(classify)
    assert result["sigma4/u"]["assignment_fixing"] is False
    assert result["sigma2/t"]["assignment_fixing"] is True
    assert result["sigma3/r"]["key_based"] is False
    record(benchmark, classification={k: v["assignment_fixing"] for k, v in result.items()})
