"""Experiment E9 — the reformulation space under the three semantics
(C&B vs Bag-C&B vs Bag-Set-C&B vs the naive unsound extension; Theorem 6.4,
Section 4.1, Example 4.1) plus the orders and chain workloads.

The reproduced shape: on Example 4.1, the set-semantics C&B accepts all of
Q1–Q4 as reformulations of Q4; Bag-Set-C&B accepts Q2–Q4 but not Q1;
Bag-C&B accepts only Q3 and Q4; and the naive extension of Section 4.1
accepts reformulations that are *not* bag equivalent to Q4 — the sound
algorithm accepts none of those.
"""

from __future__ import annotations

import pytest
from _util import record

from repro.paperlib import chain_workload
from repro.reformulation import naive_bag_c_and_b
from repro.session import Session

_ALGORITHMS = {
    "set (C&B)": "set",
    "bag-set (Bag-Set-C&B)": "bag-set",
    "bag (Bag-C&B)": "bag",
}

_EXPECTED_MEMBERSHIP = {
    "set (C&B)": {"Q1": True, "Q2": True, "Q3": True, "Q4": True},
    "bag-set (Bag-Set-C&B)": {"Q1": False, "Q2": True, "Q3": True, "Q4": True},
    "bag (Bag-C&B)": {"Q1": False, "Q2": False, "Q3": True, "Q4": True},
}


@pytest.mark.parametrize("name", sorted(_ALGORITHMS))
def bench_example_4_1_reformulation_space(benchmark, ex41, name):
    semantics = _ALGORITHMS[name]
    result = benchmark(
        lambda: Session(dependencies=ex41.dependencies).reformulate(
            ex41.q4, semantics, check_sigma_minimality=False
        )
    )
    membership = {
        "Q1": result.contains_isomorphic(ex41.q1),
        "Q2": result.contains_isomorphic(ex41.q2),
        "Q3": result.contains_isomorphic(ex41.q3),
        "Q4": result.contains_isomorphic(ex41.q4),
    }
    assert membership == _EXPECTED_MEMBERSHIP[name]
    record(
        benchmark,
        algorithm=name,
        reformulations=len(result.reformulations),
        candidates_examined=result.candidates_examined,
        membership=membership,
        paper_expected=_EXPECTED_MEMBERSHIP[name],
    )


def bench_naive_extension_is_unsound(benchmark, ex41):
    def run():
        session = Session(dependencies=ex41.dependencies)
        naive = naive_bag_c_and_b(ex41.q4, ex41.dependencies)
        unsound = sum(
            1
            for query in naive.reformulations
            if not session.decide(query, ex41.q4, "bag")
        )
        sound = session.reformulate(ex41.q4, "bag", check_sigma_minimality=False)
        sound_unsound = sum(
            1
            for query in sound.reformulations
            if not session.decide(query, ex41.q4, "bag")
        )
        return {
            "naive_accepted": len(naive.reformulations),
            "naive_not_bag_equivalent": unsound,
            "bag_cb_accepted": len(sound.reformulations),
            "bag_cb_not_bag_equivalent": sound_unsound,
        }

    result = benchmark(run)
    assert result["naive_not_bag_equivalent"] > 0
    assert result["bag_cb_not_bag_equivalent"] == 0
    record(
        benchmark,
        measured=result,
        paper_expected="the naive extension of Section 4.1 accepts non-equivalent "
        "reformulations; Bag-C&B accepts only bag-equivalent ones",
    )


def bench_sigma_minimal_outputs(benchmark, ex41):
    result = benchmark(
        lambda: Session(dependencies=ex41.dependencies).reformulate(ex41.q4, "bag")
    )
    assert len(result.minimal_reformulations) >= 1
    assert all(len(q.body) == 1 for q in result.minimal_reformulations)
    record(
        benchmark,
        minimal_reformulations=[str(q) for q in result.minimal_reformulations],
        equivalent_reformulations=len(result.reformulations),
    )


def bench_orders_workload_reformulation(benchmark, orders):
    def run():
        session = Session(dependencies=orders.dependencies)
        set_result = session.reformulate(orders.query, "set", check_sigma_minimality=False)
        bag_result = session.reformulate(orders.query, "bag", check_sigma_minimality=False)
        return {
            "set_reformulations": len(set_result.reformulations),
            "set_shortest_body": min(len(q.body) for q in set_result.reformulations),
            "bag_reformulations": len(bag_result.reformulations),
            "bag_shortest_body": min(len(q.body) for q in bag_result.reformulations),
        }

    result = benchmark(run)
    assert result["set_shortest_body"] == 1
    assert result["bag_shortest_body"] == 1  # keys make the lookups multiplicity preserving
    record(benchmark, measured=result)


@pytest.mark.parametrize("length", (2, 3, 4))
def bench_chain_reformulation_scaling(benchmark, length):
    workload = chain_workload(length)
    result = benchmark(
        lambda: Session(dependencies=workload.dependencies).reformulate(
            workload.query, "set", check_sigma_minimality=False
        )
    )
    assert any(len(q.body) == 1 for q in result.reformulations)
    record(
        benchmark,
        chain_length=length,
        candidates_examined=result.candidates_examined,
        reformulations=len(result.reformulations),
    )
