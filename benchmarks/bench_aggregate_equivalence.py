"""Experiment E8 — aggregate-query equivalence under dependencies (Theorem 6.3).

The reproduced artefact is the verdict table: for the Example 4.1 dependency
set, the max/min variants of (Q1, Q4) are equivalent (their equivalence only
needs set equivalence of the cores) while the sum/count variants are not
(bag-set equivalence of the cores fails because of the u-subgoal); dropping
the u-subgoal makes the sum/count variants equivalent too.
"""

from __future__ import annotations

import pytest
from _util import record

from repro.datalog import parse_aggregate_query
from repro.equivalence import equivalent_aggregate_queries_under_dependencies

_BODIES = {
    "Q1_body": "p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)",
    "Q2_body": "p(X,Y), t(X,Y,W), s(X,Z), r(X)",
}

_EXPECTED = {
    ("max", "Q1_body"): True,
    ("min", "Q1_body"): True,
    ("sum", "Q1_body"): False,
    ("count", "Q1_body"): False,
    ("max", "Q2_body"): True,
    ("sum", "Q2_body"): True,
    ("count", "Q2_body"): True,
}


@pytest.mark.parametrize("function,body", sorted(_EXPECTED))
def bench_aggregate_verdict(benchmark, ex41, function, body):
    base = parse_aggregate_query(f"Q(X, {function}(Y)) :- p(X,Y)")
    extended = parse_aggregate_query(f"Q(X, {function}(Y)) :- {_BODIES[body]}")
    verdict = benchmark(
        lambda: equivalent_aggregate_queries_under_dependencies(
            base, extended, ex41.dependencies
        )
    )
    assert verdict is _EXPECTED[(function, body)]
    record(
        benchmark,
        aggregate=function,
        body=body,
        equivalent=verdict,
        paper_expected=_EXPECTED[(function, body)],
    )


def bench_full_verdict_table(benchmark, ex41):
    def table():
        verdicts = {}
        for (function, body) in _EXPECTED:
            base = parse_aggregate_query(f"Q(X, {function}(Y)) :- p(X,Y)")
            extended = parse_aggregate_query(f"Q(X, {function}(Y)) :- {_BODIES[body]}")
            verdicts[f"{function}/{body}"] = (
                equivalent_aggregate_queries_under_dependencies(
                    base, extended, ex41.dependencies
                )
            )
        return verdicts

    result = benchmark(table)
    assert result == {f"{f}/{b}": v for (f, b), v in _EXPECTED.items()}
    record(benchmark, verdicts=result)
