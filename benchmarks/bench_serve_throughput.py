"""Experiment E13 — the ``repro serve`` daemon's warm-state value.

Two claims the serving subsystem makes, measured end-to-end over the real
TCP transport (in-process event-loop thread, same code path as the CLI
daemon):

* **warm request throughput** — once the daemon has chased a workload, every
  further identical ``decide`` is answered from the shared chase cache: the
  engine performs zero chases per request, so the cost is one JSON line each
  way plus a cache lookup.
* **restart latency with vs without the disk store** — the first request of
  a freshly started daemon must chase cold (two sound chases for the
  Theorem 4.2 workload) unless a :class:`ChaseStore` file is attached, in
  which case the chases come off disk and the profile stays at zero runs.

As elsewhere, the CI gate pins counts and ratios (chases per request, store
hits) rather than wall-clock seconds; see
``benchmarks/baselines/BENCH_serve_throughput.json``.
"""

from __future__ import annotations

import os
import threading
import time

from _util import record

from repro.datalog import parse_query, render_query
from repro.serve import ChaseStore, ReproClient, ReproServer
from repro.session import Session

_WARM_REQUESTS = 25


def bench_warm_decide_throughput(benchmark, ex41):
    """Warm requests are chase-free: profile runs stay put across the loop."""
    q1, q4 = render_query(ex41.q1), render_query(ex41.q4)
    server = ReproServer(Session(dependencies=ex41.dependencies), port=0)
    with server.start_in_thread() as handle:
        with ReproClient(handle.host, handle.port) as client:
            client.decide(q1, q4, "bag")  # absorb the cold chases up front
            runs_before = client.stats()["profile"]["runs"]

            def warm_loop():
                for _ in range(_WARM_REQUESTS):
                    verdict = client.decide(q1, q4, "bag")
                return verdict

            verdict = benchmark(warm_loop)
            runs_after = client.stats()["profile"]["runs"]

    assert verdict["equivalent"] is False
    assert runs_after == runs_before  # zero chases across every warm request
    record(
        benchmark,
        requests_per_round=_WARM_REQUESTS,
        chases_per_request=runs_after - runs_before,
    )


def bench_restart_first_request(benchmark, ex41, tmp_path):
    """First decide after restart: cold chase without a store, disk hit with.

    One measured round restarts the daemon twice on the same workload —
    once bare, once on a pre-populated store file — and times the first
    ``decide`` of each.  The deterministic half (store restart performs zero
    chase runs, the bare restart performs two) is always asserted; the
    wall-clock ratio is recorded for the report but not gated.
    """
    q1, q4 = render_query(ex41.q1), render_query(ex41.q4)
    store_path = tmp_path / "bench-store.jsonl"

    # Pre-populate the store file once, outside the measured region.
    seeder = Session(dependencies=ex41.dependencies, store=ChaseStore(store_path))
    seeder.decide(ex41.q1, ex41.q4, "bag")
    seeder.store.close()

    def first_request(store):
        server = ReproServer(
            Session(dependencies=ex41.dependencies), port=0, store=store
        )
        with server.start_in_thread() as handle:
            with ReproClient(handle.host, handle.port) as client:
                started = time.perf_counter()
                verdict = client.decide(q1, q4, "bag")
                elapsed = time.perf_counter() - started
                stats = client.stats()
        return verdict, elapsed, stats

    def measure():
        bare = first_request(None)
        warm = first_request(ChaseStore(store_path))
        return bare, warm

    (bare_verdict, bare_s, bare_stats), (warm_verdict, warm_s, warm_stats) = (
        benchmark(measure)
    )

    assert bare_verdict["equivalent"] is False
    assert warm_verdict["equivalent"] is False
    assert bare_stats["profile"]["runs"] == 2  # cold restart chased
    assert warm_stats["profile"]["runs"] == 0  # store restart did not
    assert warm_stats["store"]["hits"] >= 2
    record(
        benchmark,
        cold_restart_runs=bare_stats["profile"]["runs"],
        store_restart_runs=warm_stats["profile"]["runs"],
        store_restart_hits=warm_stats["store"]["hits"],
        restart_speedup=round(bare_s / warm_s, 2) if warm_s else float("inf"),
    )


# --------------------------------------------------------------------------- #
# Multi-worker tier (``--workers N``: the process pool behind one acceptor)
# --------------------------------------------------------------------------- #
_POOL_WORKERS = 2

#: Concurrency shape of the scaling tier: clients x requests-per-client.
_SCALE_CLIENTS = 8
_SCALE_REQUESTS = 8
_SCALE_WORKERS = 4
#: The >=2x scaling floor is only meaningful with enough physical cores for
#: 4 engine processes plus the acceptor and the client threads.
_SCALE_MIN_CORES = 6
_SCALE_FLOOR = 2.0


def _distinct_pairs(count):
    """*count* structurally distinct set-equivalent pairs over Example 4.1's
    schema.  A per-pair constant makes every pair its own chase-cache (and
    store) entry, so each request performs real engine work — a disk-store
    load plus the containment checks — instead of an in-memory cache hit."""
    return [
        (
            parse_query(f"Qa(X) :- p(X, 'c{i}'), p(X, Y)"),
            parse_query(f"Qb(X) :- p(X, 'c{i}'), p(X, Y), p(X, Z)"),
        )
        for i in range(count)
    ]


def _seed_store(dependencies, store_path, pairs):
    seeder = Session(dependencies=dependencies, store=ChaseStore(store_path))
    for left, right in pairs:
        assert seeder.decide(left, right, "set").equivalent
    seeder.store.close()


def bench_multiworker_store_warm(benchmark, ex41, tmp_path):
    """A 2-worker pool on a pre-populated store chases nothing, ever.

    Deterministic CI tier for the process pool: the acceptor session never
    chases (it only parses and validates), and every worker's first serve of
    the workload is a disk hit against the shared :class:`ChaseStore` — the
    merged cross-worker profile must report **zero** chase runs."""
    q1, q4 = render_query(ex41.q1), render_query(ex41.q4)
    store_path = tmp_path / "bench-pool-store.jsonl"
    seeder = Session(dependencies=ex41.dependencies, store=ChaseStore(store_path))
    seeder.decide(ex41.q1, ex41.q4, "bag")
    seeder.store.close()

    server = ReproServer(
        Session(dependencies=ex41.dependencies),
        port=0,
        workers=_POOL_WORKERS,
        store=ChaseStore(store_path),
    )
    with server.start_in_thread() as handle:
        with ReproClient(handle.host, handle.port) as client:
            client.decide(q1, q4, "bag")  # the serving worker warms off disk

            def warm_loop():
                for _ in range(_WARM_REQUESTS):
                    verdict = client.decide(q1, q4, "bag")
                return verdict

            verdict = benchmark(warm_loop)
            stats = client.stats()

    assert verdict["equivalent"] is False
    assert stats["profile"]["runs"] == 0  # merged across workers: no chase
    assert stats["store"]["hits"] >= 2
    assert stats["pool"]["workers"] == _POOL_WORKERS
    assert stats["pool"]["crashes"] == 0
    record(
        benchmark,
        workers=stats["pool"]["workers"],
        merged_chase_runs=stats["profile"]["runs"],
        store_hits_total=stats["store"]["hits"],
        requests_total=stats["pool"]["requests_dispatched"],
    )


def _pool_throughput(dependencies, workers, store_path, pairs):
    """Requests/second for *pairs* spread over concurrent clients."""
    server = ReproServer(
        Session(dependencies=dependencies),
        port=0,
        workers=workers,
        store=ChaseStore(store_path) if store_path is not None else None,
    )
    with server.start_in_thread() as handle:
        clients = [
            ReproClient(handle.host, handle.port, timeout=120.0)
            for _ in range(_SCALE_CLIENTS)
        ]
        try:
            barrier = threading.Barrier(_SCALE_CLIENTS + 1)
            failures: list[BaseException] = []

            def run(client, slice_pairs):
                try:
                    barrier.wait()
                    for left, right in slice_pairs:
                        verdict = client.decide(
                            render_query(left), render_query(right), "set"
                        )
                        assert verdict["equivalent"] is True
                except BaseException as exc:  # surfaced after join
                    failures.append(exc)

            threads = [
                threading.Thread(
                    target=run,
                    args=(
                        client,
                        pairs[i * _SCALE_REQUESTS : (i + 1) * _SCALE_REQUESTS],
                    ),
                )
                for i, client in enumerate(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            if failures:
                raise failures[0]
        finally:
            for client in clients:
                client.close()
    return (_SCALE_CLIENTS * _SCALE_REQUESTS) / elapsed


def bench_multiworker_scaling(benchmark, ex41, tmp_path):
    """Warm throughput, 1 engine vs 4: the pool's reason to exist, timed.

    Every request is a distinct pair (per-pair constants), so each one costs
    a real store load plus containment checks inside a worker — work that a
    single serialized engine cannot parallelize.  Excluded from CI's bench
    gate (``-k "not scaling"``): the ratio needs >= ``_SCALE_MIN_CORES``
    physical cores to mean anything, and shared runners have fewer.  On a
    big enough machine the 4-worker pool must clear ``_SCALE_FLOOR``x the
    single-engine warm throughput (target 2.5x); the cold (storeless) ratio
    is recorded for the report but not gated."""
    pairs = _distinct_pairs(_SCALE_CLIENTS * _SCALE_REQUESTS)
    store_path = tmp_path / "bench-scaling-store.jsonl"
    _seed_store(ex41.dependencies, store_path, pairs)

    def measure():
        warm_1 = _pool_throughput(ex41.dependencies, 1, store_path, pairs)
        warm_n = _pool_throughput(
            ex41.dependencies, _SCALE_WORKERS, store_path, pairs
        )
        cold_1 = _pool_throughput(ex41.dependencies, 1, None, pairs)
        cold_n = _pool_throughput(ex41.dependencies, _SCALE_WORKERS, None, pairs)
        return warm_1, warm_n, cold_1, cold_n

    warm_1, warm_n, cold_1, cold_n = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    warm_ratio = warm_n / warm_1
    cold_ratio = cold_n / cold_1
    cores = os.cpu_count() or 1
    gated = cores >= _SCALE_MIN_CORES
    record(
        benchmark,
        workers_compared=_SCALE_WORKERS,
        concurrent_clients=_SCALE_CLIENTS,
        warm_rps_1=round(warm_1, 1),
        warm_rps_n=round(warm_n, 1),
        cold_throughput_ratio=round(cold_ratio, 2),
        cores=cores,
        ratio_gated=gated,
    )
    # The gated ratio is only *recorded* on machines with enough cores for
    # it to mean anything; elsewhere it goes out under an ungated name so
    # the trend gate's optional pin skips it instead of failing.
    if gated:
        record(benchmark, warm_throughput_ratio=round(warm_ratio, 2))
        assert warm_ratio >= _SCALE_FLOOR, (
            f"4-worker warm throughput only {warm_ratio:.2f}x the single "
            f"engine (floor {_SCALE_FLOOR}x, {cores} cores)"
        )
    else:
        record(benchmark, warm_throughput_ratio_ungated=round(warm_ratio, 2))
