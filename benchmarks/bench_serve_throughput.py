"""Experiment E13 — the ``repro serve`` daemon's warm-state value.

Two claims the serving subsystem makes, measured end-to-end over the real
TCP transport (in-process event-loop thread, same code path as the CLI
daemon):

* **warm request throughput** — once the daemon has chased a workload, every
  further identical ``decide`` is answered from the shared chase cache: the
  engine performs zero chases per request, so the cost is one JSON line each
  way plus a cache lookup.
* **restart latency with vs without the disk store** — the first request of
  a freshly started daemon must chase cold (two sound chases for the
  Theorem 4.2 workload) unless a :class:`ChaseStore` file is attached, in
  which case the chases come off disk and the profile stays at zero runs.

As elsewhere, the CI gate pins counts and ratios (chases per request, store
hits) rather than wall-clock seconds; see
``benchmarks/baselines/BENCH_serve_throughput.json``.
"""

from __future__ import annotations

import time

from _util import record

from repro.datalog import render_query
from repro.serve import ChaseStore, ReproClient, ReproServer
from repro.session import Session

_WARM_REQUESTS = 25


def bench_warm_decide_throughput(benchmark, ex41):
    """Warm requests are chase-free: profile runs stay put across the loop."""
    q1, q4 = render_query(ex41.q1), render_query(ex41.q4)
    server = ReproServer(Session(dependencies=ex41.dependencies), port=0)
    with server.start_in_thread() as handle:
        with ReproClient(handle.host, handle.port) as client:
            client.decide(q1, q4, "bag")  # absorb the cold chases up front
            runs_before = client.stats()["profile"]["runs"]

            def warm_loop():
                for _ in range(_WARM_REQUESTS):
                    verdict = client.decide(q1, q4, "bag")
                return verdict

            verdict = benchmark(warm_loop)
            runs_after = client.stats()["profile"]["runs"]

    assert verdict["equivalent"] is False
    assert runs_after == runs_before  # zero chases across every warm request
    record(
        benchmark,
        requests_per_round=_WARM_REQUESTS,
        chases_per_request=runs_after - runs_before,
    )


def bench_restart_first_request(benchmark, ex41, tmp_path):
    """First decide after restart: cold chase without a store, disk hit with.

    One measured round restarts the daemon twice on the same workload —
    once bare, once on a pre-populated store file — and times the first
    ``decide`` of each.  The deterministic half (store restart performs zero
    chase runs, the bare restart performs two) is always asserted; the
    wall-clock ratio is recorded for the report but not gated.
    """
    q1, q4 = render_query(ex41.q1), render_query(ex41.q4)
    store_path = tmp_path / "bench-store.jsonl"

    # Pre-populate the store file once, outside the measured region.
    seeder = Session(dependencies=ex41.dependencies, store=ChaseStore(store_path))
    seeder.decide(ex41.q1, ex41.q4, "bag")
    seeder.store.close()

    def first_request(store):
        server = ReproServer(
            Session(dependencies=ex41.dependencies), port=0, store=store
        )
        with server.start_in_thread() as handle:
            with ReproClient(handle.host, handle.port) as client:
                started = time.perf_counter()
                verdict = client.decide(q1, q4, "bag")
                elapsed = time.perf_counter() - started
                stats = client.stats()
        return verdict, elapsed, stats

    def measure():
        bare = first_request(None)
        warm = first_request(ChaseStore(store_path))
        return bare, warm

    (bare_verdict, bare_s, bare_stats), (warm_verdict, warm_s, warm_stats) = (
        benchmark(measure)
    )

    assert bare_verdict["equivalent"] is False
    assert warm_verdict["equivalent"] is False
    assert bare_stats["profile"]["runs"] == 2  # cold restart chased
    assert warm_stats["profile"]["runs"] == 0  # store restart did not
    assert warm_stats["store"]["hits"] >= 2
    record(
        benchmark,
        cold_restart_runs=bare_stats["profile"]["runs"],
        store_restart_runs=warm_stats["profile"]["runs"],
        store_restart_hits=warm_stats["store"]["hits"],
        restart_speedup=round(bare_s / warm_s, 2) if warm_s else float("inf"),
    )
