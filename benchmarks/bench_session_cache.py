"""Experiment E12 — the Session engine's chase-result cache and batch pipelines.

Measures what the unified Session API buys over the flat per-call functions:

* **cold vs warm decide** — a fresh Session must chase both queries of the
  Theorem 4.2 workload (Example 4.1's Q1 vs Q4 under bag semantics, where
  the Theorem 4.2 extended bag-equivalence test decides the verdict); a warm
  Session serves both chases from cache and skips the sound chase entirely.
  The acceptance bar is a ≥5× cold/warm speedup — in practice it is orders
  of magnitude.
* **decide_many batch throughput** — the all-pairs Example 4.1 workload
  through one session (shared cache) vs the old per-call API that re-chases
  for every pair.
"""

from __future__ import annotations

import itertools
import time

from _util import record

from repro.session import Session

_WARM_LOOPS = 50


def _cold_decide(ex41):
    session = Session(dependencies=ex41.dependencies)
    return session, session.decide(ex41.q1, ex41.q4, "bag")


def bench_decide_cold(benchmark, ex41):
    """Cold path: every decide builds a fresh Session and chases both queries."""
    session, verdict = benchmark(lambda: _cold_decide(ex41))
    assert verdict.equivalent is False
    assert session.cache_stats().misses == 2
    record(benchmark, verdict=bool(verdict), chases_per_call=2)


def bench_decide_warm(benchmark, ex41):
    """Warm path: the session already chased both queries; decide is cache-only."""
    session, _ = _cold_decide(ex41)
    misses_before = session.cache_stats().misses

    verdict = benchmark(lambda: session.decide(ex41.q1, ex41.q4, "bag"))

    assert verdict.equivalent is False
    # The warm decide never chased: the miss counter is exactly where it was.
    assert session.cache_stats().misses == misses_before
    assert session.cache_stats().hits > 0
    record(benchmark, verdict=bool(verdict), chases_per_call=0)


def bench_cold_vs_warm_speedup(benchmark, ex41):
    """The acceptance bar: ≥5× cold/warm speedup on the Theorem 4.2 workload.

    The deterministic half of the bar — the warm loop performing zero chases
    — is always asserted.  The wall-clock ratio is only asserted when the
    benchmark harness is live (not under ``--benchmark-disable``): the CI
    smoke pass runs each body once on a shared runner, where a single
    scheduler hiccup could fail an otherwise-healthy build.
    """

    def measure():
        started = time.perf_counter()
        session, _ = _cold_decide(ex41)
        cold = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(_WARM_LOOPS):
            session.decide(ex41.q1, ex41.q4, "bag")
        warm = (time.perf_counter() - started) / _WARM_LOOPS
        return session, cold, warm

    session, cold, warm = benchmark(measure)
    assert session.cache_stats().misses == 2  # the warm loop never chased
    speedup = cold / warm if warm else float("inf")
    if benchmark.enabled:
        assert speedup >= 5.0, f"cold/warm speedup {speedup:.1f}x is below the 5x bar"
    record(
        benchmark,
        cold_ms=round(cold * 1e3, 3),
        warm_ms=round(warm * 1e3, 4),
        speedup=round(speedup, 1),
    )


def bench_decide_many_batch_throughput(benchmark, ex41):
    """All-pairs workload: one session + decide_many vs per-call sessions.

    The batch path chases each of the four distinct queries once; the
    per-call path (the old ``equivalent_under_dependencies_bag`` shape)
    chases two queries for every one of the six pairs.
    """
    pairs = list(
        itertools.combinations((ex41.q1, ex41.q2, ex41.q3, ex41.q4), 2)
    )

    def batch():
        session = Session(dependencies=ex41.dependencies)
        return session, session.decide_many(pairs, semantics="bag")

    session, report = benchmark(batch)
    assert report.ok_count == len(pairs) and report.error_count == 0
    assert session.cache_stats().misses == 4  # one chase per distinct query

    started = time.perf_counter()
    for q1, q2 in pairs:
        Session(dependencies=ex41.dependencies).decide(q1, q2, "bag")
    per_call = time.perf_counter() - started

    verdicts = [bool(item.result) for item in report]
    assert verdicts == [False, False, False, False, False, True]  # only Q3 ≡Σ,B Q4
    record(
        benchmark,
        pairs=len(pairs),
        batch_chases=session.cache_stats().misses,
        per_call_chases=2 * len(pairs),
        per_call_ms=round(per_call * 1e3, 2),
        verdicts=verdicts,
    )
