"""Experiment E6 — complexity of sound chase (Theorem 5.2, Examples H.1/H.2).

Two series are regenerated:

* **exponential in |Σ| / schema size m** — the H family: the terminal chase
  of ``Q(X,Y) :- p1(X,Y)`` has ≈ 2^(i-1) subgoals per relation p_i, so the
  total chase size roughly doubles with every extra relation; the key-based
  fds of Example H.2 make every tgd sound under bag and bag-set semantics, so
  the sound chase exhibits the same blow-up.
* **polynomial (here: linear) in |Q|** — chain queries of growing length
  under key + inclusion dependencies: chase output size and time grow gently
  with the query size for a fixed dependency set size per relation.

Absolute times are machine dependent; the shape (doubling vs linear growth)
is asserted.
"""

from __future__ import annotations

import pytest
from _util import record

from repro.chase import bag_set_chase, set_chase
from repro.paperlib import chain_workload, h_family

H_SIZES = (2, 3, 4, 5)
CHAIN_LENGTHS = (2, 4, 6, 8)


@pytest.mark.parametrize("m", H_SIZES)
def bench_h_family_set_chase(benchmark, m):
    workload = h_family(m)
    result = benchmark(lambda: set_chase(workload.query, workload.dependencies, max_steps=5000))
    size = len(result.query.body)
    record(
        benchmark,
        schema_size_m=m,
        chase_body_size=size,
        chase_steps=result.step_count,
        paper_expected="size grows exponentially in m (Example H.1)",
    )
    # The last relation p_m accumulates at least 2^(m-1) subgoals.
    assert result.query.predicate_counts()[f"p{m}"] >= 2 ** (m - 1)


@pytest.mark.parametrize("m", (2, 3, 4))
def bench_h_family_sound_bag_set_chase(benchmark, m):
    workload = h_family(m)
    result = benchmark(
        lambda: bag_set_chase(workload.query, workload.dependencies, max_steps=5000)
    )
    set_size = len(set_chase(workload.query, workload.dependencies, max_steps=5000).query.body)
    record(
        benchmark,
        schema_size_m=m,
        sound_chase_body_size=len(result.query.body),
        set_chase_body_size=set_size,
        paper_expected="key-based tgds keep the full exponential blow-up under "
        "bag-set semantics (Example H.2)",
    )
    assert len(result.query.body) == set_size


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def bench_chain_query_set_chase(benchmark, length):
    workload = chain_workload(length)
    result = benchmark(lambda: set_chase(workload.query, workload.dependencies))
    record(
        benchmark,
        query_size=length,
        chase_body_size=len(result.query.body),
        paper_expected="chase size linear in |Q| for a fixed per-relation "
        "dependency budget (polynomial half of Theorem 5.2)",
    )
    assert len(result.query.body) == length


def bench_h_family_growth_curve(benchmark):
    """One run that collects the whole size-vs-m series (the E6 'figure')."""

    def series():
        return {
            m: len(set_chase(h_family(m).query, h_family(m).dependencies, max_steps=5000).query.body)
            for m in H_SIZES
        }

    sizes = benchmark(series)
    # Roughly doubling growth.
    assert all(sizes[m + 1] >= 1.8 * sizes[m] for m in H_SIZES[:-1])
    record(benchmark, size_by_m={str(m): v for m, v in sizes.items()})
