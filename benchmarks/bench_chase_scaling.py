"""Experiment E6 — complexity of sound chase — plus the acceleration tiers.

Two paper series are regenerated:

* **exponential in |Σ| / schema size m** — the H family: the terminal chase
  of ``Q(X,Y) :- p1(X,Y)`` has ≈ 2^(i-1) subgoals per relation p_i, so the
  total chase size roughly doubles with every extra relation; the key-based
  fds of Example H.2 make every tgd sound under bag and bag-set semantics, so
  the sound chase exhibits the same blow-up.
* **polynomial (here: linear) in |Q|** — chain queries of growing length
  under key + inclusion dependencies: chase output size and time grow gently
  with the query size for a fixed dependency set size per relation.

Absolute times are machine dependent; the shape (doubling vs linear growth)
is asserted.

On top of E6, the **scaling tiers** measure the cold-path speedup of the
indexed/delta chase subsystem against the frozen pre-index implementation
(:mod:`repro.chase.reference`) on synthetic chain / star / clique workloads
with growing Σ.  Every tier asserts the two implementations produce
byte-identical step records; the largest tier additionally asserts the
aggregate speedup stays ≥ 5x.  Run with ``--benchmark-json
BENCH_chase_scaling.json`` to persist the speedup trajectory (CI uploads
the smallest tier's JSON as an artifact on every push).
"""

from __future__ import annotations

import time

import pytest
from _util import record

from repro.chase import bag_set_chase, set_chase, sound_chase
from repro.chase.reference import sound_chase_reference
from repro.paperlib import (
    chain_workload,
    clique_workload,
    h_family,
    star_workload,
)
from repro.semantics import Semantics

H_SIZES = (2, 3, 4, 5)
CHAIN_LENGTHS = (2, 4, 6, 8)

# Scaling tiers: (chain length, (star spokes, distractors),
# (clique size, distractors)).  Query size and |Σ| grow together.
SCALING_TIERS = {
    "small": {"chain": 12, "star": (8, 8), "clique": (6, 4)},
    "medium": {"chain": 32, "star": (20, 20), "clique": (9, 8)},
    "large": {"chain": 64, "star": (40, 40), "clique": (12, 12)},
}
#: Minimum aggregate accelerated-vs-reference speedup asserted per tier.
#: The medium floor is deliberately loose (≈3.5x measured on a quiet
#: machine): it runs on nightly shared runners and exists to catch the
#: acceleration collapsing entirely, not a few percent of drift.  The
#: large tier carried a paper-grade 5x bar through PR 4; the uid-kernel
#: refactor compounded that to 6.5x (10x measured), and the binding-level
#: probe rework (zero-materialization tgd applicability + per-Σ plan reuse
#: + candidate-list pooling) moved the measured ratio to 10.5x on a quiet
#: machine, so the floor rises to 7.5x — ~30% headroom for shared-runner
#: noise.  Asserting the ratio rather than seconds keeps the bar
#: meaningful across machines.
SCALING_SPEEDUP_FLOOR = {"medium": 2.0, "large": 7.5}
SCALING_MAX_STEPS = 5000

#: PR 4's recorded large-tier accelerated wall time and reference speedup,
#: kept for the informational improvement estimate in the benchmark JSON.
PR4_LARGE_TIER_SECONDS = 1.69
PR4_LARGE_TIER_REFERENCE_SPEEDUP = 9.0


@pytest.mark.parametrize("m", H_SIZES)
def bench_h_family_set_chase(benchmark, m):
    workload = h_family(m)
    result = benchmark(lambda: set_chase(workload.query, workload.dependencies, max_steps=5000))
    size = len(result.query.body)
    record(
        benchmark,
        schema_size_m=m,
        chase_body_size=size,
        chase_steps=result.step_count,
        paper_expected="size grows exponentially in m (Example H.1)",
    )
    # The last relation p_m accumulates at least 2^(m-1) subgoals.
    assert result.query.predicate_counts()[f"p{m}"] >= 2 ** (m - 1)


@pytest.mark.parametrize("m", (2, 3, 4))
def bench_h_family_sound_bag_set_chase(benchmark, m):
    workload = h_family(m)
    result = benchmark(
        lambda: bag_set_chase(workload.query, workload.dependencies, max_steps=5000)
    )
    set_size = len(set_chase(workload.query, workload.dependencies, max_steps=5000).query.body)
    record(
        benchmark,
        schema_size_m=m,
        sound_chase_body_size=len(result.query.body),
        set_chase_body_size=set_size,
        paper_expected="key-based tgds keep the full exponential blow-up under "
        "bag-set semantics (Example H.2)",
    )
    assert len(result.query.body) == set_size


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def bench_chain_query_set_chase(benchmark, length):
    workload = chain_workload(length)
    result = benchmark(lambda: set_chase(workload.query, workload.dependencies))
    record(
        benchmark,
        query_size=length,
        chase_body_size=len(result.query.body),
        paper_expected="chase size linear in |Q| for a fixed per-relation "
        "dependency budget (polynomial half of Theorem 5.2)",
    )
    assert len(result.query.body) == length


def _scaling_cases(tier: str):
    """The (label, query, dependencies) triples of one scaling tier.

    The chain query is chased from its first subgoal so the inclusion
    dependencies regenerate the whole chain (the full query is already
    chase-terminal); star and clique chase their workload query directly.
    """
    parameters = SCALING_TIERS[tier]
    chain = chain_workload(parameters["chain"])
    chain_prefix = chain.query.with_body(chain.query.body[:1])
    star = star_workload(*parameters["star"])
    clique = clique_workload(*parameters["clique"])
    return [
        ("chain", chain_prefix, chain.dependencies),
        ("star", star.query, star.dependencies),
        ("clique", clique.query, clique.dependencies),
    ]


def _step_records(result) -> list[str]:
    return [str(step) for step in result.steps] + [str(result.query)]


@pytest.mark.parametrize("tier", list(SCALING_TIERS))
def bench_scaling_cold_sound_chase(benchmark, tier):
    """Cold bag-set sound chase: accelerated vs frozen reference, per tier."""
    cases = _scaling_cases(tier)

    def run_accelerated():
        return [
            sound_chase(query, deps, Semantics.BAG_SET, max_steps=SCALING_MAX_STEPS)
            for _, query, deps in cases
        ]

    # One manual timing of each implementation for the recorded speedup (the
    # benchmark fixture may be disabled in smoke runs); byte-identical step
    # records are asserted on the same pass.
    per_case = {}
    accelerated_total = reference_total = 0.0
    for label, query, deps in cases:
        started = time.perf_counter()
        fast = sound_chase(query, deps, Semantics.BAG_SET, max_steps=SCALING_MAX_STEPS)
        accelerated_seconds = time.perf_counter() - started
        started = time.perf_counter()
        slow = sound_chase_reference(
            query, deps, Semantics.BAG_SET, max_steps=SCALING_MAX_STEPS
        )
        reference_seconds = time.perf_counter() - started
        assert _step_records(fast) == _step_records(slow), (
            f"{tier}/{label}: accelerated chase diverged from the reference"
        )
        accelerated_total += accelerated_seconds
        reference_total += reference_seconds
        profile = fast.profile
        per_case[label] = {
            "accelerated_seconds": round(accelerated_seconds, 6),
            "reference_seconds": round(reference_seconds, 6),
            "speedup": round(reference_seconds / accelerated_seconds, 2),
            "steps": fast.step_count,
            "index_hit_rate": round(profile.index_hit_rate, 4),
            "dependency_scans_skipped": profile.dependencies_skipped,
            "kernel_searches": profile.kernel_searches,
            "plans_compiled": profile.plans_compiled,
            "plans_reused": profile.plans_reused,
        }

    speedup = reference_total / accelerated_total
    benchmark(run_accelerated)
    record(
        benchmark,
        tier=tier,
        cold_speedup=round(speedup, 2),
        accelerated_seconds=round(accelerated_total, 6),
        reference_seconds=round(reference_total, 6),
        workloads=per_case,
    )
    floor = SCALING_SPEEDUP_FLOOR.get(tier)
    if floor is not None:
        assert speedup >= floor, (
            f"{tier} tier cold-chase speedup regressed to {speedup:.1f}x "
            f"(floor {floor}x)"
        )
    if tier == "large":
        # Informational: the uid-kernel improvement over the PR 4 baseline,
        # estimated from the (era-invariant) reference run and PR 4's
        # recorded reference speedup.  The enforced form of the ≥1.3x bar is
        # the compounded speedup floor above; this estimate just makes the
        # trajectory visible in the benchmark JSON.
        pr4_estimate = reference_total / PR4_LARGE_TIER_REFERENCE_SPEEDUP
        record(
            benchmark,
            pr4_seconds_recorded=PR4_LARGE_TIER_SECONDS,
            pr4_seconds_estimated=round(pr4_estimate, 6),
            uid_kernel_improvement_estimate=round(pr4_estimate / accelerated_total, 2),
        )


def bench_scaling_fixture_records_byte_identical(benchmark, ex41):
    """The Example 4.1 / Theorem 4.2 fixtures chase identically on both paths."""
    queries = (ex41.q1, ex41.q2, ex41.q3, ex41.q4, ex41.q5, ex41.q7, ex41.q8)

    def compare_all():
        matched = 0
        for semantics in (Semantics.BAG, Semantics.BAG_SET, Semantics.SET):
            for query in queries:
                fast = sound_chase(query, ex41.dependencies, semantics)
                slow = sound_chase_reference(query, ex41.dependencies, semantics)
                assert _step_records(fast) == _step_records(slow)
                matched += 1
        return matched

    matched = benchmark(compare_all)
    record(benchmark, fixture_chases_compared=matched)
    assert matched == len(queries) * 3


def bench_h_family_growth_curve(benchmark):
    """One run that collects the whole size-vs-m series (the E6 'figure')."""

    def series():
        return {
            m: len(set_chase(h_family(m).query, h_family(m).dependencies, max_steps=5000).query.body)
            for m in H_SIZES
        }

    sizes = benchmark(series)
    # Roughly doubling growth.
    assert all(sizes[m + 1] >= 1.8 * sizes[m] for m in H_SIZES[:-1])
    record(benchmark, size_by_m={str(m): v for m, v in sizes.items()})
