"""Experiment E12 — view-based rewriting under the three semantics.

The paper's stated application beyond the Query-Reformulation Problem:
rewriting CQ queries using views in presence of embedded dependencies under
bag or bag-set semantics.  The reproduced shape mirrors Example 4.1's logic
at the view level: a view that silently changes answer multiplicities (a
projection over a relation that may contain duplicates, or a view that joins
in an unconstrained relation) is accepted by the set-semantics rewriter but
rejected by the bag / bag-set rewriters, while multiplicity-preserving views
are accepted everywhere.
"""

from __future__ import annotations

import pytest
from _util import record

from repro.datalog import parse_dependencies, parse_query
from repro.views import ViewDefinition, ViewSet, rewrite_query_using_views

_DEPENDENCIES = parse_dependencies(
    """
    orders(O, C, P) -> customer(C, N)
    customer(C, N1) & customer(C, N2) -> N1 = N2
    """,
    set_valued=["customer"],
)

_QUERY = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")


def _views() -> ViewSet:
    return ViewSet(
        [
            # Joins orders with customer: multiplicity preserving thanks to the key.
            ViewDefinition("v_oc", parse_query("V(O, C) :- orders(O, C, P), customer(C, N)")),
            # Joins orders with an unconstrained log relation: multiplies answers.
            ViewDefinition("v_noisy", parse_query("V(O, C) :- orders(O, C, P), log(O, L)")),
        ]
    )


_EXPECTED = {
    "set": {"v_oc": True, "v_noisy": False},
    "bag-set": {"v_oc": True, "v_noisy": False},
    "bag": {"v_oc": True, "v_noisy": False},
}


@pytest.mark.parametrize("semantics", ["set", "bag-set", "bag"])
def bench_view_rewriting(benchmark, semantics):
    views = _views()

    def run():
        result = rewrite_query_using_views(
            _QUERY, views, _DEPENDENCIES, semantics, total_only=True
        )
        return {
            "rewritings": len(result.rewritings),
            "uses_v_oc": result.contains_isomorphic(parse_query("Q(O) :- v_oc(O, C)")),
            "uses_v_noisy": result.contains_isomorphic(parse_query("Q(O) :- v_noisy(O, C)")),
            "candidates": result.candidates_examined,
        }

    result = benchmark(run)
    assert result["uses_v_oc"] is _EXPECTED[semantics]["v_oc"]
    assert result["uses_v_noisy"] is _EXPECTED[semantics]["v_noisy"]
    record(benchmark, semantics=semantics, measured=result, paper_expected=_EXPECTED[semantics])


def bench_view_rewriting_distinct_projection(benchmark):
    """A DISTINCT projection view answers a DISTINCT (set) query but not the
    bag-set query whose duplicates it collapsed."""
    views = ViewSet(
        [
            ViewDefinition(
                "v_cust", parse_query("V(C) :- orders(O, C, P)"), distinct=True
            )
        ]
    )
    projection_query = parse_query("Q(C) :- orders(O, C, P)")

    def run():
        set_result = rewrite_query_using_views(
            projection_query, views, _DEPENDENCIES, "set", total_only=True
        )
        bag_set_result = rewrite_query_using_views(
            projection_query, views, _DEPENDENCIES, "bag-set", total_only=True
        )
        return {
            "set_rewritings": len(set_result.rewritings),
            "bag_set_rewritings": len(bag_set_result.rewritings),
        }

    result = benchmark(run)
    assert result["set_rewritings"] >= 1
    assert result["bag_set_rewritings"] == 0
    record(
        benchmark,
        measured=result,
        paper_expected="a DISTINCT view loses multiplicities: usable under set "
        "semantics only (the materialised-view motivation of Section 1)",
    )
