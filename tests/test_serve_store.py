"""Tests for the disk-backed chase-result store (src/repro/serve/store.py)
and the warm-state plumbing it rides on: ``Session.stats()``, the
``Session(store=...)`` read-through/write-through path, and the interned-term
snapshot handoff used by multi-process serving.
"""

from __future__ import annotations

import json

import pytest

from repro.core.terms import (
    Constant,
    Variable,
    export_interned_terms,
    pin_interned_terms,
)
from repro.serve import ChaseStore, ReproClient, ReproServer, key_digest
from repro.session import Session


def _key(session: Session, query, semantics: str = "bag"):
    strategy = session.registry.resolve(semantics)
    return session._chase_key(query, strategy, session.max_steps)


# --------------------------------------------------------------------------- #
class TestKeyDigest:
    def test_digest_is_stable_and_alpha_invariant(self, ex41):
        session = Session(dependencies=ex41.dependencies)
        key = _key(session, ex41.q1)
        assert key_digest(key) == key_digest(key)
        # An alpha-renamed copy of Q1 canonicalizes to the same ChaseKey,
        # hence the same digest — the on-disk entry is shared.
        renamed, _ = ex41.q1.freshen()
        assert key_digest(_key(session, renamed)) == key_digest(key)

    def test_digest_distinguishes_semantics_and_queries(self, ex41):
        session = Session(dependencies=ex41.dependencies)
        digests = {
            key_digest(_key(session, query, semantics))
            for query in (ex41.q1, ex41.q4)
            for semantics in ("set", "bag")
        }
        assert len(digests) == 4

    def test_digest_survives_process_boundary(self, ex41):
        """The digest must not depend on PYTHONHASHSEED or intern uids.

        Simulated here by recomputing through a fresh Session (fresh
        canonicalization) rather than a fresh interpreter; the subprocess
        variant is covered by the CI smoke job's restart-warm assertion.
        """
        first = key_digest(_key(Session(dependencies=ex41.dependencies), ex41.q1))
        second = key_digest(_key(Session(dependencies=ex41.dependencies), ex41.q1))
        assert first == second


# --------------------------------------------------------------------------- #
class TestChaseStore:
    def test_round_trip(self, tmp_path, ex41):
        path = tmp_path / "store.jsonl"
        writer = Session(dependencies=ex41.dependencies, store=ChaseStore(path))
        writer.decide(ex41.q1, ex41.q4, "bag")
        writer.store.close()
        assert writer.store.stats()["writes"] >= 2

        reader = ChaseStore(path)
        assert len(reader) >= 2
        key = _key(Session(dependencies=ex41.dependencies), ex41.q1)
        restored = reader.get(key)
        assert restored is not None
        assert restored.terminated is True
        assert reader.stats()["hits"] == 1
        reader.close()

    def test_restart_serves_warm(self, tmp_path, ex41):
        """The acceptance criterion: after restart, request one is a store
        hit, not a cold chase (profile runs stay at zero)."""
        path = tmp_path / "store.jsonl"
        cold = Session(dependencies=ex41.dependencies, store=ChaseStore(path))
        verdict = cold.decide(ex41.q1, ex41.q4, "bag")
        cold_runs = cold.chase_profile().runs
        assert cold_runs >= 2
        cold.store.close()

        warm = Session(dependencies=ex41.dependencies, store=ChaseStore(path))
        assert warm.decide(ex41.q1, ex41.q4, "bag").equivalent == verdict.equivalent
        assert warm.chase_profile().runs == 0  # every chase came off disk
        assert warm.store.stats()["hits"] >= 2
        warm.store.close()

    def test_corrupted_lines_are_skipped(self, tmp_path, ex41):
        path = tmp_path / "store.jsonl"
        session = Session(dependencies=ex41.dependencies, store=ChaseStore(path))
        session.decide(ex41.q1, ex41.q4, "bag")
        session.store.close()

        good_lines = path.read_text().splitlines()
        path.write_text(
            "not json at all\n"
            + good_lines[0]
            + "\n"
            + json.dumps({"v": 999, "k": "deadbeef"})
            + "\n"
            + "\n".join(good_lines[1:])
            + "\n"
        )
        store = ChaseStore(path)
        assert store.corrupt_entries == 2
        assert len(store) == len(good_lines)
        store.close()

    def test_totally_corrupt_store_falls_back_to_cold(self, tmp_path, ex41):
        path = tmp_path / "store.jsonl"
        path.write_text("garbage\x00garbage\nmore garbage\n")
        session = Session(dependencies=ex41.dependencies, store=ChaseStore(path))
        assert session.store.corrupt_entries >= 1
        assert len(session.store) == 0
        # Decisions still work; they just chase cold and repopulate the file.
        assert session.decide(ex41.q1, ex41.q4, "set").equivalent is True
        assert session.store.stats()["writes"] >= 2
        session.store.close()

    def test_last_record_wins(self, tmp_path, ex41):
        path = tmp_path / "store.jsonl"
        session = Session(dependencies=ex41.dependencies, store=ChaseStore(path))
        session.decide(ex41.q1, ex41.q1, "set")
        session.store.close()
        lines = path.read_text().splitlines()
        # Duplicate every record; the store must load each key once.
        path.write_text("\n".join(lines + lines) + "\n")
        store = ChaseStore(path)
        assert len(store) == len({json.loads(line)["k"] for line in lines})
        store.close()


# --------------------------------------------------------------------------- #
class TestServedStore:
    def test_serve_shutdown_restart_warm(self, tmp_path, ex41):
        """End-to-end through the daemon: serve, stop, restart on the same
        store file — the restarted daemon's first decide is warm."""
        from repro.datalog import render_query

        path = tmp_path / "store.jsonl"
        q1, q4 = render_query(ex41.q1), render_query(ex41.q4)

        first = ReproServer(
            Session(dependencies=ex41.dependencies), port=0, store=ChaseStore(path)
        )
        with first.start_in_thread() as handle:
            with ReproClient(handle.host, handle.port) as client:
                client.decide(q1, q4, "bag")
                stats = client.stats()
                assert stats["store"]["writes"] >= 2
                assert stats["profile"]["runs"] >= 2  # cold chases happened

        second = ReproServer(
            Session(dependencies=ex41.dependencies), port=0, store=ChaseStore(path)
        )
        with second.start_in_thread() as handle:
            with ReproClient(handle.host, handle.port) as client:
                served = client.decide(q1, q4, "bag")
                assert served["equivalent"] is False
                stats = client.stats()
                assert stats["store"]["hits"] >= 2  # served from disk...
                assert stats["profile"]["runs"] == 0  # ...not re-chased
                assert client.health()["store"] is True


# --------------------------------------------------------------------------- #
class TestSessionStats:
    def test_sections_and_counters(self, ex41):
        session = Session(dependencies=ex41.dependencies)
        session.decide(ex41.q1, ex41.q4, "bag")
        session.decide(ex41.q1, ex41.q4, "bag")
        stats = session.stats()
        assert stats["chase_cache"]["hits"] >= 2
        assert stats["chase_cache"]["misses"] >= 2
        assert 0.0 <= stats["chase_cache"]["hit_rate"] <= 1.0
        assert stats["profile"]["runs"] == 2
        assert stats["intern"]["variables"] > 0
        assert "store" not in stats  # no store attached

    def test_store_section_present_when_attached(self, tmp_path, ex41):
        session = Session(
            dependencies=ex41.dependencies, store=ChaseStore(tmp_path / "s.jsonl")
        )
        stats = session.stats()
        assert stats["store"]["entries"] == 0
        session.store.close()

    def test_profile_as_dict_derivations(self, ex41):
        session = Session(dependencies=ex41.dependencies)
        session.decide(ex41.q1, ex41.q4, "bag")
        profile = session.chase_profile().as_dict()
        assert profile["steps"] == profile["tgd_steps"] + profile["egd_steps"]
        assert 0.0 <= profile["index_hit_rate"] <= 1.0


# --------------------------------------------------------------------------- #
class TestInternSnapshot:
    def test_export_and_pin_round_trip(self):
        x, c = Variable("snapx"), Constant("snapc")
        snapshot = export_interned_terms()
        assert ("V", "snapx") in snapshot and ("C", "snapc") in snapshot
        # Pinning in the same process re-interns to the identical objects.
        pinned = pin_interned_terms(snapshot)
        assert pinned == len(snapshot)
        assert Variable("snapx") is x and Constant("snapc") is c

    def test_pin_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            pin_interned_terms([("Q", "nope")])
