"""Tests for the paper's core contribution: associated test queries
(Def. 4.2), assignment-fixing tgds (Def. 4.3), sound chase under bag and
bag-set semantics (Theorems 4.1 / 4.3 / 5.1), and the Σ^max algorithms
(Theorem 5.3, Algorithms 1 and 2)."""

from __future__ import annotations

import pytest

from repro.chase import (
    associated_test_query,
    bag_chase,
    bag_set_chase,
    compare_with_key_based,
    is_assignment_fixing,
    is_assignment_fixing_for,
    is_sound_chase_step,
    iter_applicable_tgd_homomorphisms,
    max_bag_set_sigma_subset,
    max_bag_sigma_subset,
    set_chase,
    sound_chase,
)
from repro.core import are_isomorphic, is_set_equivalent
from repro.database import canonical_database, satisfies_all
from repro.datalog import parse_dependencies, parse_query, parse_tgd
from repro.dependencies import DependencySet
from repro.semantics import Semantics


def _dependency(dependencies, name):
    return next(d for d in dependencies if d.name == name)


class TestAssociatedTestQuery:
    def test_two_copies_of_conclusion(self, ex42):
        sigma1 = _dependency(ex42.dependencies, "sigma1")
        hom = next(iter_applicable_tgd_homomorphisms(ex42.query, sigma1))
        test = associated_test_query(ex42.query, sigma1, hom)
        # Body of Q plus two copies of the 2-atom conclusion.
        assert len(test.query.body) == 1 + 2 + 2
        assert len(test.existential_pairs) == 2
        z_vars = {pair[0] for pair in test.existential_pairs}
        theta_vars = {pair[1] for pair in test.existential_pairs}
        assert z_vars.isdisjoint(theta_vars)

    def test_full_tgd_degenerates_to_single_copy(self):
        tgd = parse_tgd("p(X,Y) -> r(X)")
        query = parse_query("Q(X) :- p(X,Y)")
        hom = next(iter_applicable_tgd_homomorphisms(query, tgd))
        test = associated_test_query(query, tgd, hom)
        assert test.existential_pairs == ()
        assert len(test.query.body) == 2

    def test_head_is_preserved(self, ex42):
        sigma1 = _dependency(ex42.dependencies, "sigma1")
        hom = next(iter_applicable_tgd_homomorphisms(ex42.query, sigma1))
        test = associated_test_query(ex42.query, sigma1, hom)
        assert test.query.head_terms == ex42.query.head_terms

    def test_fresh_variables_do_not_clash_with_query(self, ex42):
        sigma1 = _dependency(ex42.dependencies, "sigma1")
        hom = next(iter_applicable_tgd_homomorphisms(ex42.query, sigma1))
        test = associated_test_query(ex42.query, sigma1, hom)
        query_vars = set(ex42.query.all_variables())
        for z_var, theta_var in test.existential_pairs:
            assert z_var not in query_vars and theta_var not in query_vars


class TestAssignmentFixing:
    def test_example_4_2_positive(self, ex42):
        sigma1 = _dependency(ex42.dependencies, "sigma1")
        assert is_assignment_fixing(ex42.query, sigma1, ex42.dependencies)

    def test_example_5_1_query_dependence(self, ex43):
        sigma4 = _dependency(ex43.dependencies, "sigma4")
        assert is_assignment_fixing(ex43.query_prime, sigma4, ex43.dependencies)

    def test_example_4_6_nu1_assignment_fixing_but_not_key_based(self, ex46):
        nu1 = _dependency(ex46.dependencies, "nu1")
        comparison = compare_with_key_based(ex46.query, nu1, ex46.dependencies)
        assert comparison["assignment_fixing"] is True
        assert comparison["key_based"] is False

    def test_full_tgds_are_assignment_fixing(self, ex41):
        sigma3 = _dependency(ex41.dependencies, "sigma3")
        assert is_assignment_fixing(ex41.q4, sigma3, ex41.dependencies)

    def test_example_4_1_sigma4a_not_assignment_fixing(self, ex41):
        # The u-component of σ4 has no constraints pinning down its witness.
        from repro.dependencies import regularize_tgd

        sigma4 = _dependency(ex41.dependencies, "sigma4")
        u_part = next(
            part for part in regularize_tgd(sigma4)
            if part.conclusion[0].predicate == "u"
        )
        assert not is_assignment_fixing(ex41.q4, u_part, ex41.dependencies)

    def test_not_applicable_tgd_is_not_assignment_fixing(self, ex41):
        sigma2 = _dependency(ex41.dependencies, "sigma2")
        assert not is_assignment_fixing(ex41.q3, sigma2, ex41.dependencies)

    def test_per_homomorphism_variant(self, ex42):
        sigma1 = _dependency(ex42.dependencies, "sigma1")
        hom = next(iter_applicable_tgd_homomorphisms(ex42.query, sigma1))
        assert is_assignment_fixing_for(ex42.query, sigma1, hom, ex42.dependencies)


class TestSoundChaseExample41:
    def test_bag_chase_gives_q3(self, ex41):
        result = bag_chase(ex41.q4, ex41.dependencies)
        assert result.terminated
        assert are_isomorphic(result.query, ex41.q3)

    def test_bag_set_chase_gives_q2(self, ex41):
        result = bag_set_chase(ex41.q4, ex41.dependencies)
        assert are_isomorphic(result.query, ex41.q2)

    def test_set_chase_gives_q1_up_to_equivalence(self, ex41):
        result = sound_chase(ex41.q4, ex41.dependencies, Semantics.SET)
        assert is_set_equivalent(result.query, ex41.q1)

    def test_proposition_6_2_containment_chain(self, ex41):
        from repro.core import is_set_contained

        set_result = sound_chase(ex41.q4, ex41.dependencies, Semantics.SET).query
        bag_set_result = bag_set_chase(ex41.q4, ex41.dependencies).query
        bag_result = bag_chase(ex41.q4, ex41.dependencies).query
        assert is_set_contained(set_result, bag_set_result)
        assert is_set_contained(bag_set_result, bag_result)
        assert is_set_contained(bag_result, ex41.q4)

    def test_sound_chase_terminates_when_set_chase_does(self, ex41):
        # Proposition 5.1 (on this workload).
        for semantics in (Semantics.BAG, Semantics.BAG_SET):
            assert sound_chase(ex41.q4, ex41.dependencies, semantics).terminated

    def test_uniqueness_of_sound_chase_results(self, ex41):
        # Theorem 5.1 (determinism + reshuffled dependency order).
        reshuffled = DependencySet(
            list(reversed(ex41.dependencies.dependencies)),
            ex41.dependencies.set_valued_predicates,
        )
        first = bag_chase(ex41.q4, ex41.dependencies).query
        second = bag_chase(ex41.q4, reshuffled).query
        assert are_isomorphic(
            first.drop_duplicates_for({"s", "t"}), second.drop_duplicates_for({"s", "t"})
        )

    def test_example_4_4_without_sigma2_rewriting_still_found(self, ex41):
        # Example 4.4/4.5: even without σ2, the regularized σ4 contributes its
        # t-component, so the bag chase of Q4 still reaches Q3.
        result = bag_chase(ex41.q4, ex41.dependencies_without_sigma2)
        assert are_isomorphic(result.query, ex41.q3)

    def test_bag_set_chase_without_sigma2(self, ex41):
        result = bag_set_chase(ex41.q4, ex41.dependencies_without_sigma2)
        assert are_isomorphic(result.query, ex41.q2)


class TestSoundChaseOtherExamples:
    def test_example_4_8_traditional_chase_result(self, ex46):
        # Sound bag-set chase of Q adds a fresh S-subgoal and the T-subgoal.
        result = bag_set_chase(ex46.query, ex46.dependencies)
        assert are_isomorphic(result.query, ex46.query_traditional_chase)

    def test_example_4_8_bag_chase_matches_because_s_t_set_valued(self, ex46):
        result = bag_chase(ex46.query, ex46.dependencies)
        assert are_isomorphic(result.query, ex46.query_traditional_chase)

    def test_example_e_1_tgd_not_applied_under_bag(self, exE1):
        # P is not set valued, so the (key-based) tgd σ2 may not fire under bag
        # semantics; under bag-set semantics it may.
        bag_result = bag_chase(exE1.query, exE1.dependencies)
        assert are_isomorphic(bag_result.query, exE1.query)
        bag_set_result = bag_set_chase(exE1.query, exE1.dependencies)
        assert are_isomorphic(bag_set_result.query, exE1.chased_query)

    def test_example_e_2_tgd_not_applied_under_bag_set(self, exE2):
        # No key constraint on P: the step is not assignment fixing, so even
        # the bag-set chase must not apply it.
        result = bag_set_chase(exE2.query, exE2.dependencies)
        assert are_isomorphic(result.query, exE2.query)

    def test_sound_chase_set_semantics_delegates(self, ex41):
        assert are_isomorphic(
            sound_chase(ex41.q4, ex41.dependencies, Semantics.SET).query,
            set_chase(ex41.q4, ex41.dependencies).query,
        )

    def test_plain_list_of_dependencies_accepted(self, exE2):
        result = sound_chase(exE2.query, list(exE2.dependencies), Semantics.BAG_SET)
        assert are_isomorphic(result.query, exE2.query)


class TestIsSoundChaseStep:
    def test_egds_always_sound(self, ex41):
        sigma7 = _dependency(ex41.dependencies, "sigma7")
        assert is_sound_chase_step(ex41.q3, sigma7, ex41.dependencies, Semantics.BAG)

    def test_unsound_tgd_detected(self, ex41):
        sigma3 = _dependency(ex41.dependencies, "sigma3")
        sigma4 = _dependency(ex41.dependencies, "sigma4")
        chased = bag_chase(ex41.q4, ex41.dependencies).query
        assert not is_sound_chase_step(chased, sigma3, ex41.dependencies, Semantics.BAG)
        assert not is_sound_chase_step(chased, sigma4, ex41.dependencies, Semantics.BAG)

    def test_inapplicable_tgd_vacuously_sound(self, ex41):
        sigma2 = _dependency(ex41.dependencies, "sigma2")
        chased = bag_chase(ex41.q4, ex41.dependencies).query
        assert is_sound_chase_step(chased, sigma2, ex41.dependencies, Semantics.BAG)

    def test_set_semantics_always_sound(self, ex41):
        sigma4 = _dependency(ex41.dependencies, "sigma4")
        assert is_sound_chase_step(ex41.q4, sigma4, ex41.dependencies, Semantics.SET)


class TestSigmaSubset:
    def test_example_4_1_bag_subset(self, ex41):
        result = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        removed_names = {d.name for d in result.removed}
        assert removed_names == {"sigma3", "sigma4"}
        kept_names = {d.name for d in result.subset}
        assert {"sigma1", "sigma2", "sigma7", "sigma8"} <= kept_names

    def test_example_4_1_bag_set_subset(self, ex41):
        result = max_bag_set_sigma_subset(ex41.q4, ex41.dependencies)
        assert {d.name for d in result.removed} == {"sigma4"}

    def test_proposition_5_2_inclusion(self, ex41):
        bag = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        bag_set = max_bag_set_sigma_subset(ex41.q4, ex41.dependencies)
        assert set(d.name for d in bag.subset) <= set(d.name for d in bag_set.subset)
        assert len(bag.subset) < len(bag_set.subset) < len(ex41.dependencies)

    def test_canonical_database_satisfies_subset(self, ex41):
        result = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        canonical = canonical_database(result.chase_result.query).instance
        assert satisfies_all(canonical, list(result.subset), check_set_valuedness=False)

    def test_subset_is_query_dependent(self, ex41):
        # Section 5.3: for Q(X) :- p(X,Y), u(X,Z) the canonical database of the
        # bag-chase result *does* satisfy σ4 (its u-atom is already there).
        query = parse_query("Q(X) :- p(X,Y), u(X,Z)")
        result = max_bag_sigma_subset(query, ex41.dependencies)
        assert "sigma4" not in {d.name for d in result.removed}

    def test_plain_dependency_list_accepted(self):
        sigma = parse_dependencies("p(X,Y) -> r(X)")
        query = parse_query("Q(X) :- p(X,Y)")
        result = max_bag_sigma_subset(query, list(sigma))
        assert len(result.removed) == 1


class TestTgdStepDeduplication:
    """Audit of the tgd branch of ``sound_chase`` (no post-step dedupe).

    Under bag-set semantics all duplicate subgoals may be dropped, yet
    ``sound_chase`` deduplicates only after egd steps.  These tests pin down
    why the tgd branch needs no dedupe: regularization makes it impossible
    for a tgd step to duplicate an atom already in the body, and the only
    duplicates a step can create at all — syntactically duplicated
    conclusion atoms instantiated with the same fresh existentials — do not
    affect the Theorem 6.2 equivalence test, which compares canonical
    representations.
    """

    def test_regularization_prevents_duplicates_with_existing_body(self):
        # Unregularized, p(X,Y) -> q(X) ∧ r(X) applied to a body already
        # containing q(a) would re-add q(a).  Regularization splits the full
        # tgd into single-atom components, and the q-component is simply not
        # applicable, so only r(a) is added.
        sigma = parse_dependencies("p(X,Y) -> q(X), r(X)")
        query = parse_query("Q(X) :- p(X,Y), q(X)")
        result = bag_set_chase(query, DependencySet(list(sigma)))
        bodies = list(result.query.body)
        assert len(bodies) == len(set(bodies)), "tgd step duplicated a subgoal"
        assert len([a for a in bodies if a.predicate == "q"]) == 1

    def test_every_nonfull_added_atom_carries_a_fresh_existential(self, ex41):
        # Replay the chase records: at the moment each tgd step applied, none
        # of its added atoms may already occur in the body.  (Egd steps
        # rewrite the body, so the replay only runs on egd-free chases.)
        for workload_query in (ex41.q4, ex41.q1):
            result = bag_set_chase(workload_query, ex41.dependencies)
            if any(record.kind == "egd" for record in result.steps):
                continue
            body = list(workload_query.body)
            for record in result.steps:
                for atom in record.added_atoms:
                    assert atom not in body, (
                        f"tgd step re-added {atom}; the bag-set branch would "
                        "need a dedupe after all"
                    )
                body.extend(record.added_atoms)

    def test_duplicated_conclusion_atoms_do_not_change_the_verdict(self):
        # A regularized tgd can still carry syntactically duplicated
        # conclusion atoms; both copies are instantiated with the *same*
        # fresh existentials, so the step adds a duplicated pair.  That
        # duplicate survives (no dedupe in the tgd branch) but is invisible
        # to the bag-set test: Theorem 6.2 compares canonical
        # representations, which drop it.
        from repro.core import is_bag_set_equivalent
        from repro.dependencies.base import TGD
        from repro.dependencies.builders import functional_dependency_egd
        from repro.core.atoms import Atom

        tgd = TGD(
            [Atom("p", ["X"])],
            [Atom("s", ["X", "Z"]), Atom("s", ["X", "Z"])],
            name="dup",
        )
        # The key on s makes the tgd assignment fixing, so the step is sound
        # under bag-set semantics and actually fires; both duplicate copies
        # carry the *same* fresh Z, so the key egd never triggers on them.
        key = functional_dependency_egd("s", 2, [0], 1, name="key_s")
        query = parse_query("Q(X) :- p(X)")
        result = bag_set_chase(query, DependencySet([tgd, key]))
        s_atoms = [a for a in result.query.body if a.predicate == "s"]
        assert len(s_atoms) == 2 and s_atoms[0] == s_atoms[1]
        deduplicated = result.query.canonical_representation()
        assert is_bag_set_equivalent(result.query, deduplicated)


class TestAcceleratedChaseMatchesReference:
    """The indexed/delta chase must be step-for-step the old chase."""

    def _records(self, result):
        return [str(record) for record in result.steps] + [str(result.query)]

    @pytest.mark.parametrize("semantics", [Semantics.BAG, Semantics.BAG_SET, Semantics.SET])
    def test_example_4_1_step_records_byte_identical(self, ex41, semantics):
        from repro.chase.reference import sound_chase_reference

        for query in (ex41.q1, ex41.q2, ex41.q3, ex41.q4, ex41.q5, ex41.q7, ex41.q8):
            fast = sound_chase(query, ex41.dependencies, semantics)
            slow = sound_chase_reference(query, ex41.dependencies, semantics)
            assert self._records(fast) == self._records(slow)

    def test_theorem_4_2_fixture_step_records_byte_identical(self, ex41):
        from repro.chase.reference import sound_chase_reference

        # The Theorem 4.2 workload pairs (duplicate subgoals over set-valued
        # vs possibly-bag relations).
        for query in (ex41.q3, ex41.q5, ex41.q7, ex41.q8):
            fast = bag_chase(query, ex41.dependencies)
            slow = sound_chase_reference(query, ex41.dependencies, Semantics.BAG)
            assert self._records(fast) == self._records(slow)

    def test_chain_workload_set_chase_identical(self):
        from repro.chase.reference import set_chase_reference
        from repro.paperlib import chain_workload

        workload = chain_workload(10)
        prefix = workload.query.with_body(workload.query.body[:1])
        fast = set_chase(prefix, workload.dependencies)
        slow = set_chase_reference(prefix, workload.dependencies)
        assert self._records(fast) == self._records(slow)

    def test_h_family_sound_chase_identical(self):
        from repro.chase.reference import sound_chase_reference
        from repro.paperlib import h_family

        workload = h_family(3)
        for semantics in (Semantics.BAG, Semantics.BAG_SET):
            fast = sound_chase(workload.query, workload.dependencies, semantics, max_steps=5000)
            slow = sound_chase_reference(workload.query, workload.dependencies, semantics, max_steps=5000)
            assert self._records(fast) == self._records(slow)


class TestChaseProfile:
    def test_profile_counts_steps_and_rounds(self, ex41):
        result = bag_set_chase(ex41.q4, ex41.dependencies)
        profile = result.profile
        assert profile is not None
        assert profile.steps == result.step_count
        assert profile.tgd_steps + profile.egd_steps == profile.steps
        assert profile.rounds == profile.steps + 1  # final no-step round
        assert profile.wall_time > 0.0

    def test_profile_reports_delta_skips_on_chain(self):
        from repro.paperlib import chain_workload

        workload = chain_workload(12)
        prefix = workload.query.with_body(workload.query.body[:1])
        profile = set_chase(prefix, workload.dependencies).profile
        assert profile is not None
        # Re-scanning every dependency every round would examine far more:
        # the delta index must have skipped a superlinear number of scans.
        assert profile.dependencies_skipped > profile.steps
        assert profile.index_lookups > 0

    def test_assignment_fixing_memo_is_exercised_by_sigma_subset(self, ex41):
        # Algorithms 1/2 repeatedly test soundness against a fixed chase
        # result; within one sound chase the memo at least never corrupts
        # verdicts (sigma subsets recompute them via is_sound_chase_step).
        with_memo = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        assert {d.name for d in with_memo.removed} == {"sigma3", "sigma4"}
