"""Tests for tgd regularization (Def. 4.1), weak acyclicity, key-based tgds,
and the tuple-ID / set-enforcing framework (Appendix C)."""

from __future__ import annotations

import pytest

from repro.core.atoms import Atom
from repro.database import DatabaseInstance, satisfies, satisfies_all
from repro.datalog import parse_dependencies, parse_egd, parse_tgd
from repro.dependencies import (
    DependencySet,
    TGD,
    augment_schema_with_tuple_ids,
    dependency_set_with_tuple_ids,
    detect_set_enforcing_predicates,
    dependency_graph,
    egd_as_positional_fd,
    extract_positional_fds,
    is_key_based_tgd,
    is_regularized,
    is_regularized_set,
    is_set_enforcing_egd,
    is_superkey_positions,
    is_weakly_acyclic,
    regularize,
    regularize_tgd,
    set_enforcing_egd,
    special_edges_on_cycles,
    tid_projection_query,
)
from repro.paperlib import example_4_1, h_family
from repro.schema import DatabaseSchema


class TestRegularization:
    def test_single_atom_conclusion_is_regularized(self):
        assert is_regularized(parse_tgd("p(X,Y) -> s(X,Z)"))

    def test_example_4_1_sigma1_not_regularized(self):
        sigma1 = parse_tgd("p(X,Y) -> s(X,Z) & t(X,V,W)")
        assert not is_regularized(sigma1)
        parts = regularize_tgd(sigma1)
        assert len(parts) == 2
        assert {a.predicate for part in parts for a in part.conclusion} == {"s", "t"}
        assert all(is_regularized(part) for part in parts)

    def test_example_4_2_sigma1_regularized(self):
        sigma1 = parse_tgd("p(X,Y) -> r(X,Z) & s(Z,W)")
        assert is_regularized(sigma1)
        assert regularize_tgd(sigma1) == [sigma1]

    def test_shared_existential_chain_stays_together(self):
        tgd = parse_tgd("p(X) -> r(X,Z) & s(Z,W) & t(W,V)")
        assert is_regularized(tgd)

    def test_mixed_components(self):
        tgd = parse_tgd("p(X) -> r(X,Z) & s(Z,W) & u(X,V)")
        parts = regularize_tgd(tgd)
        assert len(parts) == 2
        sizes = sorted(len(part.conclusion) for part in parts)
        assert sizes == [1, 2]

    def test_regularize_set_keeps_egds_and_markers(self, ex41):
        regularized = regularize(ex41.dependencies)
        assert regularized.set_valued_predicates == ex41.dependencies.set_valued_predicates
        assert len(regularized.egds()) == len(ex41.dependencies.egds())
        assert is_regularized_set(regularized)
        assert not is_regularized_set(ex41.dependencies)

    def test_full_tgd_with_two_atoms_splits(self):
        tgd = parse_tgd("p(X,Y) -> r(X) & u(X,Y)")
        assert not is_regularized(tgd)
        assert len(regularize_tgd(tgd)) == 2


class TestWeakAcyclicity:
    def test_paper_examples_are_weakly_acyclic(self, ex41, ex42, ex43, ex46):
        for example in (ex41, ex42, ex43, ex46):
            assert is_weakly_acyclic(example.dependencies)

    def test_h_family_is_weakly_acyclic(self):
        assert is_weakly_acyclic(h_family(4).dependencies)

    def test_self_referential_existential_cycle_detected(self):
        sigma = parse_dependencies("e(X,Y) -> e(Y,Z)")
        assert not is_weakly_acyclic(sigma)
        assert special_edges_on_cycles(sigma)

    def test_full_tgd_cycle_is_weakly_acyclic(self):
        sigma = parse_dependencies("""
            e(X,Y) -> f(Y,X)
            f(X,Y) -> e(Y,X)
        """)
        assert is_weakly_acyclic(sigma)

    def test_two_step_existential_cycle_detected(self):
        sigma = parse_dependencies("""
            a(X) -> b(X,Z)
            b(X,Y) -> a(Y)
        """)
        assert not is_weakly_acyclic(sigma)

    def test_egds_do_not_create_edges(self):
        sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z")
        assert dependency_graph(sigma).number_of_edges() == 0
        assert is_weakly_acyclic(sigma)


class TestKeyBasedClassification:
    def test_egd_as_positional_fd(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        assert egd_as_positional_fd(egd) == ("s", (frozenset({0}), 1))
        non_fd = parse_egd("s(X,Y) & r(X,Z) -> Y = Z")
        assert egd_as_positional_fd(non_fd) is None

    def test_extract_positional_fds(self, ex41):
        fds = extract_positional_fds(list(ex41.dependencies))
        assert (frozenset({0}), 1) in fds["s"]
        assert (frozenset({0, 1}), 2) in fds["t"]

    def test_is_superkey_positions(self, ex41):
        deps = list(ex41.dependencies)
        assert is_superkey_positions("s", 2, [0], deps)
        assert is_superkey_positions("t", 3, [0, 1], deps)
        assert not is_superkey_positions("t", 3, [0], deps)
        assert not is_superkey_positions("u", 2, [0], deps)

    def test_key_based_tgds_in_example_4_1(self, ex41):
        by_name = {d.name: d for d in ex41.dependencies}
        # σ2: conclusion t(X,Y,W), universal positions {0,1} form the key of T,
        # and T is set valued -> key based.
        assert is_key_based_tgd(by_name["sigma2"], ex41.dependencies)
        # σ3: conclusion r(X); R is not set valued -> not key based.
        assert not is_key_based_tgd(by_name["sigma3"], ex41.dependencies)
        # σ4: the u-atom is not key based.
        assert not is_key_based_tgd(by_name["sigma4"], ex41.dependencies)

    def test_example_4_6_nu1_not_key_based(self, ex46):
        nu1 = next(d for d in ex46.dependencies if d.name == "nu1")
        assert not is_key_based_tgd(nu1, ex46.dependencies)


class TestTupleIds:
    def test_augment_schema(self):
        schema = DatabaseSchema.from_arities({"p": 2, "r": 1})
        augmented = augment_schema_with_tuple_ids(schema)
        assert augmented.arity("p") == 3
        assert augmented.relation("p").attribute_names[-1] == "tid"

    def test_set_enforcing_egd_shape_and_detection(self):
        egd = set_enforcing_egd("p", 2)
        assert is_set_enforcing_egd(egd) == "p"
        assert detect_set_enforcing_predicates([egd]) == {"p"}
        # An ordinary key egd is not set enforcing.
        key = parse_egd("p(X,Y,T) & p(X,Z,S) -> Y = Z")
        assert is_set_enforcing_egd(key) is None

    def test_set_enforcing_egd_forces_duplicate_free_projection(self):
        egd = set_enforcing_egd("p", 2)
        # Augmented relation: two tuples with equal payload, distinct tids.
        bad = DatabaseInstance.from_dict({"p": [(1, 2, "t1"), (1, 2, "t2")]})
        good = DatabaseInstance.from_dict({"p": [(1, 2, "t1"), (1, 3, "t2")]})
        assert not satisfies(bad, egd)
        assert satisfies(good, egd)

    def test_tid_projection_query_shape(self):
        query = tid_projection_query("p", 2)
        assert len(query.head_terms) == 2
        assert query.body[0].arity == 3

    def test_dependency_set_with_tuple_ids(self, ex41):
        materialised = dependency_set_with_tuple_ids(ex41.dependencies, ex41.schema)
        added = [d for d in materialised if is_set_enforcing_egd(d)]
        assert {is_set_enforcing_egd(d) for d in added} == {"s", "t"}
        assert len(materialised) == len(ex41.dependencies) + 2
