"""Tests for the datalog (rule notation) parser and renderer."""

from __future__ import annotations

import pytest

from repro.core.aggregate import AggregateFunction
from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable
from repro.datalog import (
    parse_aggregate_query,
    parse_dependencies,
    parse_dependency,
    parse_egd,
    parse_query,
    parse_tgd,
    render_aggregate_query,
    render_dependency,
    render_dependency_set,
    render_query,
)
from repro.dependencies import EGD, TGD
from repro.exceptions import ParseError


class TestParseQuery:
    def test_basic(self):
        query = parse_query("Q(X) :- p(X,Y), s(X,Z)")
        assert query.head_predicate == "Q"
        assert query.head_terms == (Variable("X"),)
        assert query.body == (Atom("p", ["X", "Y"]), Atom("s", ["X", "Z"]))

    def test_constants(self):
        query = parse_query("Q(X) :- p(X, 3), r(X, 'hello'), s(X, abc)")
        assert Atom("p", ["X", 3]) in query.body
        assert Atom("r", ["X", Constant("hello")]) in query.body
        assert Atom("s", ["X", Constant("abc")]) in query.body

    def test_float_constant(self):
        query = parse_query("Q(X) :- p(X, 3.5)")
        assert query.body[0].terms[1] == Constant(3.5)

    def test_whitespace_insensitive(self):
        assert parse_query("Q(X):-p(X,Y)") == parse_query("Q( X ) :-  p( X , Y )")

    def test_ampersand_conjunction(self):
        query = parse_query("Q(X) :- p(X,Y) & r(Y)")
        assert len(query.body) == 2

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- ")
        with pytest.raises(ParseError):
            parse_query("Q(X) p(X,Y)")
        with pytest.raises(ParseError):
            parse_query("Q(X) :- p(X,Y) extra")
        with pytest.raises(ParseError):
            parse_query("Q(X) :- p(X,Y), X = Y")


class TestParseDependency:
    def test_tgd(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z) & t(X,V,W)")
        assert isinstance(tgd, TGD)
        assert len(tgd.conclusion) == 2

    def test_egd(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        assert isinstance(egd, EGD)

    def test_mixed_dependency_normalised(self):
        deps = parse_dependency("p(X,Y) -> t(X,Y,W) & X = Y")
        assert {type(d) for d in deps} == {TGD, EGD}

    def test_parse_tgd_rejects_egd(self):
        with pytest.raises(ParseError):
            parse_tgd("p(X,Y) -> t(X,Y,W) & X = Y")

    def test_premise_equality_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("p(X,Y) & X = Y -> r(X)")

    def test_unicode_arrow(self):
        tgd = parse_tgd("p(X,Y) → r(X)")
        assert tgd.conclusion[0].predicate == "r"

    def test_parse_dependencies_multi_line(self):
        sigma = parse_dependencies(
            """
            # a comment
            p(X,Y) -> r(X)
            s(X,Y) & s(X,Z) -> Y = Z
            """,
            set_valued=["s"],
        )
        assert len(sigma) == 2
        assert sigma.is_set_valued("s")
        assert all(d.name for d in sigma)


class TestParseAggregateQuery:
    def test_sum(self):
        query = parse_aggregate_query("Q(X, sum(Y)) :- r(X,Y)")
        assert query.aggregate.function is AggregateFunction.SUM
        assert query.grouping_terms == (Variable("X"),)

    def test_count_star(self):
        query = parse_aggregate_query("Q(X, count(*)) :- r(X,Y)")
        assert query.aggregate.function is AggregateFunction.COUNT_STAR
        assert query.aggregate.argument is None

    def test_no_grouping(self):
        query = parse_aggregate_query("Q(min(Y)) :- r(X,Y)")
        assert query.grouping_terms == ()

    def test_missing_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_aggregate_query("Q(X, Y) :- r(X,Y)")


class TestRendering:
    def test_query_round_trip(self):
        text = "Q(X, Y) :- p(X, Z), s(Z, Y), r(X, 3)"
        query = parse_query(text)
        assert parse_query(render_query(query)) == query

    def test_string_constant_round_trip(self):
        query = parse_query("Q(X) :- p(X, 'New York')")
        assert parse_query(render_query(query)) == query

    def test_dependency_round_trip(self):
        for text in (
            "p(X,Y) -> s(X,Z) & t(X,V,W)",
            "s(X,Y) & s(X,Z) -> Y = Z",
            "p(X,Y) -> r(X)",
        ):
            (dependency,) = parse_dependency(text)
            (reparsed,) = parse_dependency(render_dependency(dependency))
            assert reparsed.premise == dependency.premise
            if isinstance(dependency, TGD):
                assert reparsed.conclusion == dependency.conclusion
            else:
                assert reparsed.equalities == dependency.equalities

    def test_aggregate_round_trip(self):
        for text in ("Q(X, sum(Y)) :- r(X, Y)", "Q(X, count(*)) :- r(X, Y)"):
            query = parse_aggregate_query(text)
            assert parse_aggregate_query(render_aggregate_query(query)) == query

    def test_render_dependency_set_mentions_set_valued(self, ex41):
        rendered = render_dependency_set(ex41.dependencies)
        assert "set-valued" in rendered
        assert rendered.count("->") == len(ex41.dependencies)

    def test_paper_examples_render_and_reparse(self, ex41):
        for query in (ex41.q1, ex41.q2, ex41.q3, ex41.q4, ex41.q5):
            assert parse_query(render_query(query)) == query
