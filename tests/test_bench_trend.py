"""Unit tests for the CI benchmark trend gate (benchmarks/check_bench_trend.py).

The script lives outside ``src/`` (it is CI tooling, not library code), so it
is loaded here by file path.  The committed baselines are also validated for
shape, so a malformed refresh fails tier-1 instead of silently disarming CI.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_bench_trend.py"
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

spec = importlib.util.spec_from_file_location("check_bench_trend", SCRIPT)
trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(trend)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def _current(tmp_path, **extra_info):
    return _write(
        tmp_path,
        "current.json",
        {"benchmarks": [{"name": "bench_x", "extra_info": extra_info,
                         "stats": {"mean": 0.5}}]},
    )


def _baseline(tmp_path, metrics):
    return _write(tmp_path, "baseline.json", {"pinned": {"bench_x": metrics}})


class TestCheck:
    def test_within_tolerance_passes(self, tmp_path):
        current = _current(tmp_path, speedup=8.0)
        baseline = _baseline(
            tmp_path, {"extra_info.speedup": {"value": 10.0, "direction": "higher"}}
        )
        assert trend.check(current, baseline) == []

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        current = _current(tmp_path, speedup=7.0)
        baseline = _baseline(
            tmp_path, {"extra_info.speedup": {"value": 10.0, "direction": "higher"}}
        )
        failures = trend.check(current, baseline)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_lower_direction(self, tmp_path):
        current = _current(tmp_path)
        baseline = _baseline(
            tmp_path, {"stats.mean": {"value": 0.1, "direction": "lower"}}
        )
        failures = trend.check(current, baseline)
        assert len(failures) == 1 and "above baseline" in failures[0]

    def test_zero_tolerance_pins_exact_counts(self, tmp_path):
        current = _current(tmp_path, steps=19)
        baseline = _baseline(
            tmp_path,
            {"extra_info.steps": {"value": 20, "direction": "higher", "tolerance": 0.0}},
        )
        assert trend.check(current, baseline)
        exact = _current(tmp_path, steps=20)
        assert trend.check(exact, baseline) == []

    def test_missing_metric_and_missing_benchmark_fail(self, tmp_path):
        current = _current(tmp_path)
        baseline = _write(
            tmp_path,
            "baseline.json",
            {"pinned": {
                "bench_x": {"extra_info.gone": {"value": 1, "direction": "higher"}},
                "bench_gone": {"extra_info.y": {"value": 1, "direction": "higher"}},
            }},
        )
        failures = trend.check(current, baseline)
        assert any("metric missing" in f for f in failures)
        assert any("benchmark missing" in f for f in failures)

    def test_empty_baseline_fails(self, tmp_path):
        current = _current(tmp_path)
        baseline = _write(tmp_path, "baseline.json", {"pinned": {}})
        assert trend.check(current, baseline)

    def test_nested_workload_paths_resolve(self, tmp_path):
        current = _write(
            tmp_path,
            "current.json",
            {"benchmarks": [{"name": "bench_x",
                             "extra_info": {"workloads": {"chain": {"steps": 11}}}}]},
        )
        baseline = _baseline(
            tmp_path,
            {"extra_info.workloads.chain.steps":
                 {"value": 11, "direction": "higher", "tolerance": 0.0}},
        )
        assert trend.check(current, baseline) == []

    def test_optional_benchmark_may_be_absent(self, tmp_path, capsys):
        # CI deselects hardware-bound tiers with -k; their pins skip with a
        # notice instead of failing the gate.
        current = _current(tmp_path, speedup=10.0)
        baseline = _write(
            tmp_path,
            "baseline.json",
            {"pinned": {
                "bench_x": {"extra_info.speedup":
                                {"value": 10.0, "direction": "higher"}},
                "bench_scaling": {
                    "_optional": True,
                    "extra_info.ratio": {"value": 2.5, "direction": "higher"},
                },
            }},
        )
        assert trend.check(current, baseline) == []
        assert "optional benchmark bench_scaling" in capsys.readouterr().out

    def test_optional_benchmark_is_enforced_when_present(self, tmp_path):
        current = _write(
            tmp_path,
            "current.json",
            {"benchmarks": [{"name": "bench_scaling",
                             "extra_info": {"ratio": 1.1}}]},
        )
        baseline = _write(
            tmp_path,
            "baseline.json",
            {"pinned": {"bench_scaling": {
                "_optional": True,
                "extra_info.ratio": {"value": 2.5, "direction": "higher"},
            }}},
        )
        failures = trend.check(current, baseline)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_optional_metric_may_be_absent_but_is_enforced_when_present(
        self, tmp_path, capsys
    ):
        # A metric the benchmark only records on qualifying machines.
        pin = {"extra_info.ratio":
                   {"value": 2.5, "direction": "higher", "optional": True}}
        absent = _current(tmp_path, other=1)
        baseline = _baseline(tmp_path, pin)
        assert trend.check(absent, baseline) == []
        assert "optional metric" in capsys.readouterr().out
        present = _current(tmp_path, ratio=1.0)
        failures = trend.check(present, baseline)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_non_optional_disappearance_still_fails(self, tmp_path):
        # The escape hatches must not weaken the default contract.
        current = _write(tmp_path, "current.json", {"benchmarks": []})
        baseline = _baseline(
            tmp_path, {"extra_info.speedup": {"value": 1.0, "direction": "higher"}}
        )
        assert any("benchmark missing" in f for f in trend.check(current, baseline))

    def test_main_exit_codes(self, tmp_path, capsys):
        current = _current(tmp_path, speedup=10.0)
        good = _baseline(
            tmp_path, {"extra_info.speedup": {"value": 10.0, "direction": "higher"}}
        )
        assert trend.main(["--current", str(current), "--baseline", str(good)]) == 0
        bad = _write(
            tmp_path, "bad.json",
            {"pinned": {"bench_x": {"extra_info.speedup":
                                        {"value": 100.0, "direction": "higher"}}}},
        )
        assert trend.main(["--current", str(current), "--baseline", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "OK" in out


@pytest.mark.parametrize(
    "baseline_path", sorted(BASELINE_DIR.glob("*.json")), ids=lambda p: p.name
)
def test_committed_baselines_are_well_formed(baseline_path):
    data = json.loads(baseline_path.read_text())
    pinned = data.get("pinned")
    assert pinned, f"{baseline_path.name}: no pinned metrics"
    for bench_name, metrics in pinned.items():
        assert metrics, f"{baseline_path.name}: {bench_name} pins nothing"
        for metric_path, pin in metrics.items():
            if metric_path.startswith("_"):  # meta keys ("_optional")
                assert metric_path == "_optional" and isinstance(pin, bool), (
                    bench_name,
                    metric_path,
                )
                continue
            assert isinstance(pin.get("value"), (int, float)), (bench_name, metric_path)
            assert pin.get("direction", "higher") in ("higher", "lower")
            tolerance = pin.get("tolerance", trend.DEFAULT_TOLERANCE)
            assert 0.0 <= float(tolerance) <= 1.0
            assert isinstance(pin.get("optional", False), bool)
