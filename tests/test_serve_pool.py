"""Tests for the multi-worker engine pool (src/repro/serve/pool.py).

Everything here runs the real server on an event-loop thread with
``workers >= 2`` — real forked engine processes, real pipes, the real
shared-memory intern snapshot — and drives it over TCP.  The suite pins
the four behaviours the pool exists to provide:

* verdict agreement with a direct in-process :class:`Session` regardless
  of worker count;
* crash containment — killing a busy worker fails only the in-flight
  request (``worker-crashed``), a replacement spawns, and the next
  request succeeds;
* ``overloaded`` backpressure once the bounded in-flight queue is full;
* delta coherence — an ``apply-delta`` is visible to every worker before
  any later request, so concurrent clients never see a stale Σ.

The slow requests use a cyclic dependency set whose chase burns its step
budget (~3 ms per step here); a huge budget holds a worker busy for as
long as the test needs.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.datalog import parse_dependencies, parse_query, render_query
from repro.datalog.render import render_dependency
from repro.dependencies.base import DependencySet
from repro.serve import ReproClient, ReproServer, ServerError
from repro.session import Session

#: Cyclic Σ: every chase over ``p`` runs to its step budget.
CYCLIC = "p(X,Y) -> p(Y,Z)"
#: A step budget that holds a worker busy for minutes — killed long before.
FOREVER = 100_000_000

SEMANTICS = ("set", "bag", "bag-set")


def _q(query) -> str:
    return render_query(query)


def _start(session: Session, **kwargs):
    return ReproServer(session, port=0, **kwargs).start_in_thread()


def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# --------------------------------------------------------------------------- #
class TestWireAgreement:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_verdicts_match_direct_session(self, ex41, workers):
        """Example 4.1 verdicts over the wire equal direct Session calls,
        with the thread backend and with a real process pool alike."""
        direct = Session(dependencies=ex41.dependencies)
        with _start(
            Session(dependencies=ex41.dependencies), workers=workers
        ) as handle:
            with ReproClient(handle.host, handle.port) as client:
                health = client.health()
                assert health["workers"] == workers
                assert health["backend"] == (
                    "thread" if workers == 1 else "process"
                )
                for left, right in [
                    (ex41.q1, ex41.q4),
                    (ex41.q2, ex41.q3),
                    (ex41.q1, ex41.q2),
                ]:
                    for semantics in SEMANTICS:
                        served = client.decide(_q(left), _q(right), semantics)
                        expected = direct.decide(left, right, semantics)
                        assert served["equivalent"] == expected.equivalent, (
                            semantics,
                            _q(left),
                            _q(right),
                        )

    def test_concurrent_clients_spread_over_workers(self, ex41):
        direct = Session(dependencies=ex41.dependencies)
        expected = direct.decide(ex41.q1, ex41.q4, "set").equivalent
        with _start(Session(dependencies=ex41.dependencies), workers=4) as handle:
            results: list[object] = []
            lock = threading.Lock()

            def _client_run() -> None:
                with ReproClient(handle.host, handle.port) as client:
                    for _ in range(3):
                        got = client.decide(_q(ex41.q1), _q(ex41.q4), "set")
                        with lock:
                            results.append(got["equivalent"])

            threads = [threading.Thread(target=_client_run) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert results == [expected] * 18

            with ReproClient(handle.host, handle.port) as client:
                stats = client.stats()
            pool = stats["pool"]
            assert pool["workers"] == 4
            assert pool["requests_dispatched"] >= 18
            assert pool["crashes"] == 0
            # Per-worker snapshots merged plus listed individually.
            assert len(stats["workers"]) == 4
            assert sum(
                w["requests"] for w in stats["workers"] if "stats" in w
            ) >= 18

    def test_custom_semantics_rejected_for_process_pool(self, ex41):
        from repro.exceptions import SemanticsError
        from repro.session.strategies import SetStrategy

        class MySet(SetStrategy):
            name = "my-set"
            aliases = ()

        session = Session(dependencies=ex41.dependencies)
        session.register_semantics(MySet())
        with pytest.raises(SemanticsError, match="custom strateg"):
            ReproServer(session, port=0, workers=2)


# --------------------------------------------------------------------------- #
class TestCrashRespawn:
    def test_crash_mid_request_fails_only_that_request(self):
        """SIGKILL a busy worker: the in-flight request gets
        ``worker-crashed``, a replacement spawns, the next request works."""
        session = Session(
            dependencies=parse_dependencies(CYCLIC), max_steps=FOREVER
        )
        with _start(session, workers=2, timeout=120.0) as handle:
            backend = handle.server.backend
            before = set(backend.worker_pids())
            assert len(before) == 2

            errors: list[ServerError] = []

            def _slow_decide() -> None:
                with ReproClient(handle.host, handle.port, timeout=120.0) as c:
                    try:
                        c.decide("Q1(X) :- p(X,Y)", "Q2(X) :- p(X,Y), p(Y,Z)")
                    except ServerError as exc:
                        errors.append(exc)

            thread = threading.Thread(target=_slow_decide)
            thread.start()
            assert _wait_until(
                lambda: any(w.busy for w in backend._workers)
            ), "worker never became busy"
            busy_pids = [w.pid for w in backend._workers if w.busy]
            assert busy_pids
            os.kill(busy_pids[0], signal.SIGKILL)

            thread.join(timeout=30)
            assert not thread.is_alive()
            assert [exc.code for exc in errors] == ["worker-crashed"]

            # A replacement is (or is being) spawned; the pool heals to 2.
            assert _wait_until(lambda: len(backend.worker_pids()) == 2)
            after = set(backend.worker_pids())
            assert busy_pids[0] not in after
            assert backend.crashes == 1
            assert backend.respawns == 1

            # The daemon survives: the next request succeeds (r/1 is
            # untouched by the cyclic Σ, so no chase step is needed).
            with ReproClient(handle.host, handle.port) as client:
                verdict = client.decide("Q(X) :- r(X)", "Q(X) :- r(X)", "set")
                assert verdict["equivalent"] is True


# --------------------------------------------------------------------------- #
class TestOverloaded:
    def test_saturated_queue_rejects_with_overloaded(self):
        session = Session(
            dependencies=parse_dependencies(CYCLIC), max_steps=FOREVER
        )
        with _start(
            session, workers=2, max_inflight=2, timeout=120.0
        ) as handle:
            backend = handle.server.backend

            def _slow_decide() -> None:
                with ReproClient(handle.host, handle.port, timeout=120.0) as c:
                    try:
                        c.decide("Q1(X) :- p(X,Y)", "Q2(X) :- p(X,Y), p(Y,Z)")
                    except (ServerError, Exception):
                        pass  # killed at teardown; outcome is irrelevant

            threads = [threading.Thread(target=_slow_decide) for _ in range(2)]
            for thread in threads:
                thread.start()
            assert _wait_until(lambda: backend._inflight >= 2), (
                "both slow requests should be in flight"
            )

            with ReproClient(handle.host, handle.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.decide("Q(X) :- r(X)", "Q(X) :- r(X)")
            assert excinfo.value.code == "overloaded"
            assert backend.overloaded_rejections >= 1

            # Teardown kills the busy workers; the client threads see their
            # connections drop, which is fine — join them after stop().
            handle.stop()
            for thread in threads:
                thread.join(timeout=10)


# --------------------------------------------------------------------------- #
class TestDeltaCoherence:
    def test_apply_delta_visible_to_all_workers(self, ex41):
        """Start on a Σ-prefix where Q1 ≢set Q4, apply the missing
        dependencies over the wire, then hammer the pool from concurrent
        clients: every worker must answer with the post-delta Σ."""
        full = ex41.dependencies
        deps = list(full.dependencies)
        prefix = DependencySet(deps[:3], ())
        direct_full = Session(dependencies=full)

        with _start(Session(dependencies=prefix), workers=4) as handle:
            with ReproClient(handle.host, handle.port) as client:
                assert client.decide(_q(ex41.q1), _q(ex41.q4), "set")[
                    "equivalent"
                ] is False  # prefix Σ: the paper's equivalence is not yet derivable

                result = client.apply_delta(
                    _q(ex41.q1),
                    add_dependencies="\n".join(
                        render_dependency(dep) for dep in deps[3:]
                    ),
                    set_valued=sorted(full.set_valued_predicates),
                    semantics="set",
                )
                assert result["sigma_version"] == 1
                assert result["workers_applied"] == 4

            outcomes: list[tuple[str, object]] = []
            lock = threading.Lock()

            def _client_run() -> None:
                with ReproClient(handle.host, handle.port) as client:
                    for semantics in SEMANTICS:
                        got = client.decide(
                            _q(ex41.q1), _q(ex41.q4), semantics
                        )
                        with lock:
                            outcomes.append((semantics, got["equivalent"]))

            threads = [threading.Thread(target=_client_run) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)

            assert len(outcomes) == 18
            for semantics, equivalent in outcomes:
                expected = direct_full.decide(ex41.q1, ex41.q4, semantics)
                assert equivalent == expected.equivalent, semantics

            with ReproClient(handle.host, handle.port) as client:
                stats = client.stats()
            versions = [
                w["sigma_version"] for w in stats["workers"] if "stats" in w
            ]
            assert versions == [1, 1, 1, 1]
            assert stats["pool"]["sigma_version"] == 1


# --------------------------------------------------------------------------- #
class TestSharedMemoryLifecycle:
    def test_snapshot_exists_while_serving_and_is_unlinked_on_stop(self, ex41):
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-Linux fallback
            pytest.skip("no /dev/shm on this platform")
        handle = _start(Session(dependencies=ex41.dependencies), workers=2)
        try:
            backend = handle.server.backend
            assert backend._shm is not None
            name = backend._shm.name
            assert (shm_dir / name.lstrip("/")).exists()
            pool = backend.pool_stats()
            assert pool["intern_snapshot"]["shm_name"] == name
            assert pool["intern_snapshot"]["terms"] > 0
            assert pool["intern_snapshot"]["payload_bytes"] > 0
        finally:
            handle.stop()
        assert not (shm_dir / name.lstrip("/")).exists(), (
            "shared-memory intern snapshot leaked past server shutdown"
        )

    def test_workers_report_pinned_interned_terms(self, ex41):
        with _start(Session(dependencies=ex41.dependencies), workers=2) as handle:
            with ReproClient(handle.host, handle.port) as client:
                stats = client.stats()
            pinned = [
                w["pinned_terms"] for w in stats["workers"] if "stats" in w
            ]
            assert len(pinned) == 2
            assert all(count > 0 for count in pinned)


# --------------------------------------------------------------------------- #
class TestMergeStats:
    def test_numeric_leaves_sum_and_bools_or(self):
        from repro.session.engine import merge_stats

        merged = merge_stats(
            [
                {"cache": {"hits": 2, "misses": 3, "resumable": False}},
                {"cache": {"hits": 5, "misses": 1, "resumable": True}},
            ]
        )
        assert merged["cache"]["hits"] == 7
        assert merged["cache"]["misses"] == 4
        assert merged["cache"]["resumable"] is True

    def test_hit_rate_recomputed_from_summed_counts(self):
        from repro.session.engine import merge_stats

        merged = merge_stats(
            [
                {"cache": {"hits": 1, "misses": 3, "hit_rate": 0.25}},
                {"cache": {"hits": 3, "misses": 1, "hit_rate": 0.75}},
            ]
        )
        assert merged["cache"]["hit_rate"] == pytest.approx(0.5)

    def test_non_numeric_values_keep_first(self):
        from repro.session.engine import merge_stats

        merged = merge_stats(
            [
                {"session": {"default_semantics": "bag-set", "ops": 1}},
                {"session": {"default_semantics": "set", "ops": 2}},
            ]
        )
        assert merged["session"]["default_semantics"] == "bag-set"
        assert merged["session"]["ops"] == 3

    def test_empty_input_merges_to_empty(self):
        from repro.session.engine import merge_stats

        assert merge_stats([]) == {}


# --------------------------------------------------------------------------- #
class TestStoreWarmWorkers:
    def test_workers_warm_from_shared_store(self, ex41, tmp_path):
        """Every worker opens its own handle on the store path; chases run
        before the pool existed are disk hits inside the workers."""
        from repro.serve import ChaseStore

        store_path = tmp_path / "chase.store"
        warm = Session(dependencies=ex41.dependencies)
        warm.set_store(ChaseStore(store_path))
        for semantics in SEMANTICS:
            warm.decide(ex41.q1, ex41.q4, semantics)
        warm.store.close()

        session = Session(dependencies=ex41.dependencies)
        with _start(
            session, workers=2, store=ChaseStore(store_path)
        ) as handle:
            with ReproClient(handle.host, handle.port) as client:
                for semantics in SEMANTICS:
                    got = client.decide(_q(ex41.q1), _q(ex41.q4), semantics)
                    direct = Session(dependencies=ex41.dependencies).decide(
                        ex41.q1, ex41.q4, semantics
                    )
                    assert got["equivalent"] == direct.equivalent
                stats = client.stats()
        store_hits = sum(
            w["stats"].get("store", {}).get("hits", 0)
            for w in stats["workers"]
            if "stats" in w
        )
        assert store_hits > 0, "workers should warm from the shared store"
