"""Differential tests: indexed homomorphism engine vs the frozen reference.

The indexed engine of :mod:`repro.core.homomorphism` must be *extensionally
identical* to the plain backtracking search it replaced (kept verbatim in
:mod:`repro.core.reference`): same homomorphisms, in the same order — the
deterministic chase step sequences, and therefore every pinned fixture in
this repository, depend on that order.

The generator is seeded and covers the hard spots deliberately: constants
(matching and clashing), repeated variables within and across atoms,
repeated predicates (many candidate atoms per predicate), mixed arities on
one predicate name, and non-empty ``fixed`` mappings.

Since the uid-kernel refactor the campaign runs 500 cases and each case is
additionally replayed through an explicitly precompiled
:class:`~repro.core.plan.MatchPlan`, pinning both entry points of the int
kernel against the frozen reference backtracker.
"""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import Atom
from repro.core.homomorphism import (
    TargetIndex,
    find_homomorphism,
    iter_homomorphisms,
    iter_matches,
)
from repro.core.plan import MatchPlan
from repro.core.reference import (
    find_homomorphism_reference,
    iter_homomorphisms_reference,
)
from repro.core.terms import Constant, Variable

CASES = 500
PREDICATES = ("p", "q", "r")  # few names → plenty of repeated predicates
VARIABLES = tuple(Variable(f"X{i}") for i in range(5))
CONSTANTS = tuple(Constant(value) for value in (0, 1, "a"))


def _random_term(rng: random.Random, constant_bias: float):
    if rng.random() < constant_bias:
        return rng.choice(CONSTANTS)
    return rng.choice(VARIABLES)


def _random_atoms(rng: random.Random, count: int, constant_bias: float) -> list[Atom]:
    atoms = []
    for _ in range(count):
        predicate = rng.choice(PREDICATES)
        arity = rng.randint(1, 3)
        atoms.append(
            Atom(predicate, [_random_term(rng, constant_bias) for _ in range(arity)])
        )
    return atoms


def _random_case(rng: random.Random):
    constant_bias = rng.choice((0.0, 0.2, 0.4))
    source = _random_atoms(rng, rng.randint(1, 4), constant_bias)
    target = _random_atoms(rng, rng.randint(1, 6), constant_bias)
    fixed = None
    if rng.random() < 0.3:
        # Pre-bind a source variable to a target term (possibly one that
        # makes the search unsatisfiable — both engines must agree there too).
        source_vars = [t for atom in source for t in atom.terms if isinstance(t, Variable)]
        target_terms = [t for atom in target for t in atom.terms]
        if source_vars and target_terms:
            fixed = {rng.choice(source_vars): rng.choice(target_terms)}
    return source, target, fixed


@pytest.mark.parametrize("seed", range(CASES))
def test_indexed_engine_matches_reference(seed):
    rng = random.Random(0xC0FFEE + seed)
    source, target, fixed = _random_case(rng)

    expected = list(iter_homomorphisms_reference(source, target, fixed))
    actual = list(iter_homomorphisms(source, target, fixed))
    assert actual == expected  # same mappings, same order

    # The precompiled-plan entry point yields exactly the same enumeration.
    plan = MatchPlan(source)
    index = TargetIndex(target)
    assert list(iter_matches(plan, index, fixed)) == expected

    # find-one agrees with iterate-all (and with the reference find-one).
    assert find_homomorphism(source, target, fixed) == (
        expected[0] if expected else None
    )
    assert find_homomorphism_reference(source, target, fixed) == (
        expected[0] if expected else None
    )


def test_reusable_index_is_equivalent_to_fresh_builds():
    rng = random.Random(0xBEEF)
    for _ in range(40):
        source_a, target, _ = _random_case(rng)
        source_b, _, _ = _random_case(rng)
        index = TargetIndex(target)
        for source in (source_a, source_b, source_a):
            with_index = list(iter_homomorphisms(source, target, index=index))
            fresh = list(iter_homomorphisms(source, target))
            assert with_index == fresh


def test_index_counters_track_narrowing():
    target = [Atom("p", [Constant(i), Variable("Y")]) for i in range(10)]
    index = TargetIndex(target)
    # A constant-position probe must narrow to a single posting list.
    assert index.candidate_ids(Atom("p", [Constant(3), Variable("Z")]), {}) == [2 + 1]
    assert index.lookups == 1
    assert index.narrowed == 1
    # An unconstrained probe scans the whole predicate group: no narrowing.
    assert len(index.candidate_ids(Atom("p", [Variable("A"), Variable("B")]), {})) == 10
    assert index.lookups == 2
    assert index.narrowed == 1
