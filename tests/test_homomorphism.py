"""Unit tests for homomorphisms, containment mappings, and isomorphism."""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.homomorphism import (
    are_isomorphic,
    can_extend_homomorphism,
    find_containment_mapping,
    find_homomorphism,
    find_isomorphism,
    iter_containment_mappings,
    iter_homomorphisms,
)
from repro.core.query import cq
from repro.core.terms import Constant, Variable


class TestFindHomomorphism:
    def test_simple_match(self):
        source = [Atom("p", ["X", "Y"])]
        target = [Atom("p", ["A", "B"])]
        hom = find_homomorphism(source, target)
        assert hom == {Variable("X"): Variable("A"), Variable("Y"): Variable("B")}

    def test_variable_can_map_to_constant(self):
        hom = find_homomorphism([Atom("p", ["X"])], [Atom("p", [3])])
        assert hom == {Variable("X"): Constant(3)}

    def test_constants_must_match(self):
        assert find_homomorphism([Atom("p", [1])], [Atom("p", [2])]) is None
        assert find_homomorphism([Atom("p", [1])], [Atom("p", [1])]) == {}

    def test_repeated_variable_must_be_consistent(self):
        source = [Atom("p", ["X", "X"])]
        assert find_homomorphism(source, [Atom("p", ["A", "B"])]) is None
        assert find_homomorphism(source, [Atom("p", ["A", "A"])]) is not None

    def test_two_variables_may_collapse(self):
        source = [Atom("p", ["X", "Y"])]
        assert find_homomorphism(source, [Atom("p", ["A", "A"])]) is not None

    def test_predicate_mismatch(self):
        assert find_homomorphism([Atom("p", ["X"])], [Atom("q", ["A"])]) is None

    def test_arity_mismatch(self):
        assert find_homomorphism([Atom("p", ["X"])], [Atom("p", ["A", "B"])]) is None

    def test_multi_atom_join(self):
        source = [Atom("p", ["X", "Y"]), Atom("q", ["Y", "Z"])]
        target = [Atom("p", ["a", "b"]), Atom("q", ["b", "c"]), Atom("q", ["d", "e"])]
        hom = find_homomorphism(source, target)
        assert hom[Variable("Y")] == Constant("b")
        assert hom[Variable("Z")] == Constant("c")

    def test_fixed_mapping_respected(self):
        source = [Atom("p", ["X", "Y"])]
        target = [Atom("p", ["a", "b"]), Atom("p", ["c", "d"])]
        hom = find_homomorphism(source, target, fixed={Variable("X"): Constant("c")})
        assert hom[Variable("Y")] == Constant("d")

    def test_fixed_mapping_can_make_it_unsatisfiable(self):
        source = [Atom("p", ["X"])]
        target = [Atom("p", ["a"])]
        assert find_homomorphism(source, target, fixed={Variable("X"): Constant("z")}) is None

    def test_iter_homomorphisms_counts(self):
        source = [Atom("p", ["X"])]
        target = [Atom("p", ["a"]), Atom("p", ["b"])]
        assert len(list(iter_homomorphisms(source, target))) == 2

    def test_can_extend_homomorphism(self):
        target = [Atom("p", ["a", "b"]), Atom("q", ["b"])]
        hom = {Variable("X"): Constant("a"), Variable("Y"): Constant("b")}
        assert can_extend_homomorphism(hom, [Atom("q", ["Y"])], target)
        assert not can_extend_homomorphism(hom, [Atom("q", ["X"])], target)


class TestContainmentMapping:
    def test_containment_mapping_exists(self):
        q_small = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q_large = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("r", ["Y"]))
        # From the less constrained query into the more constrained one.
        assert find_containment_mapping(q_small, q_large) is not None
        assert find_containment_mapping(q_large, q_small) is None

    def test_head_must_map_onto_head(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["Y"], Atom("p", ["X", "Y"]))
        # q1's head X must map to q2's head Y: p(Y, ...) must exist in q2 - it does not.
        assert find_containment_mapping(q1, q2) is None

    def test_head_arity_mismatch(self):
        q1 = cq("Q", ["X", "Y"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        assert find_containment_mapping(q1, q2) is None

    def test_head_constants(self):
        q1 = cq("Q", [1], Atom("p", ["X"]))
        q2 = cq("Q", [1], Atom("p", ["X"]))
        q3 = cq("Q", [2], Atom("p", ["X"]))
        assert find_containment_mapping(q1, q2) is not None
        assert find_containment_mapping(q1, q3) is None

    def test_iter_containment_mappings_multiple(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["A"], Atom("p", ["A", "B"]), Atom("p", ["A", "C"]))
        assert len(list(iter_containment_mappings(q1, q2))) == 2


class TestIsomorphism:
    def test_isomorphic_up_to_renaming(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("s", ["Y", "Z"]))
        q2 = cq("Q", ["A"], Atom("s", ["B", "C"]), Atom("p", ["A", "B"]))
        assert are_isomorphic(q1, q2)
        mapping = find_isomorphism(q1, q2)
        assert mapping[Variable("X")] == Variable("A")

    def test_duplicate_subgoals_matter(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["X", "Y"]))
        assert not are_isomorphic(q1, q2)

    def test_same_counts_but_not_isomorphic(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["Y", "X"]))
        q2 = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["X", "Z"]))
        assert not are_isomorphic(q1, q2)

    def test_variable_collapse_is_not_isomorphism(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["X"], Atom("p", ["X", "X"]))
        assert not are_isomorphic(q1, q2)
        assert not are_isomorphic(q2, q1)

    def test_head_constants_respected(self):
        q1 = cq("Q", ["X", 1], Atom("p", ["X"]))
        q2 = cq("Q", ["X", 2], Atom("p", ["X"]))
        assert not are_isomorphic(q1, q2)

    def test_isomorphism_is_reflexive_and_symmetric(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["Y", "Z"]))
        q2 = cq("Q", ["A"], Atom("p", ["A", "B"]), Atom("p", ["B", "C"]))
        assert are_isomorphic(q1, q1)
        assert are_isomorphic(q1, q2) and are_isomorphic(q2, q1)

    def test_example_4_1_chase_results(self, ex41):
        # Q2 and Q3 differ by an r-subgoal: not isomorphic.
        assert not are_isomorphic(ex41.q2, ex41.q3)
        assert not are_isomorphic(ex41.q3, ex41.q5)
