"""Integration tests: every claim of the paper's worked examples.

These tests are the executable counterpart of EXPERIMENTS.md — each test
asserts one of the claims the paper makes in its examples, and the few
places where the implementation's verdict differs from the printed example
(Examples 4.3/4.7, see EXPERIMENTS.md) are asserted explicitly as such.
"""

from __future__ import annotations

import pytest

from repro.chase import (
    bag_chase,
    bag_set_chase,
    is_assignment_fixing,
    set_chase,
)
from repro.core import are_isomorphic, is_set_equivalent
from repro.database import satisfies, satisfies_all
from repro.dependencies import is_key_based_tgd, is_regularized, regularize_tgd
from repro.equivalence import (
    decide_equivalence,
    equivalent_under_dependencies_bag,
    equivalent_under_dependencies_bag_set,
    equivalent_under_dependencies_set,
)
from repro.evaluation import Bag, evaluate
from repro.paperlib import PAPER_EXAMPLES
from repro.semantics import Semantics


def _dependency(dependencies, name):
    return next(d for d in dependencies if d.name == name)


class TestExample41Claims:
    """Example 4.1 plus Examples 4.4, 4.5, 4.9, D.1, D.2."""

    def test_counterexample_database_satisfies_sigma(self, ex41):
        assert satisfies_all(ex41.counterexample, ex41.dependencies)

    def test_q1_equivalent_to_q4_under_set_semantics(self, ex41):
        assert equivalent_under_dependencies_set(ex41.q1, ex41.q4, ex41.dependencies)

    def test_q1_not_equivalent_without_dependencies(self, ex41):
        assert not is_set_equivalent(ex41.q1, ex41.q4)

    def test_naive_bag_test_accepts_the_pair(self, ex41):
        # (Q1)Σ,S ≡B (Q4)Σ,S in the dependency-free sense used by the naive
        # algorithm (both chase results are set-equivalent; the naive test
        # compares them with the bag test of Theorem 2.1 after chasing).
        chased_q1 = set_chase(ex41.q1, ex41.dependencies).query
        chased_q4 = set_chase(ex41.q4, ex41.dependencies).query
        assert is_set_equivalent(chased_q1, chased_q4)

    def test_bag_inequivalence_witnessed_by_database(self, ex41):
        assert evaluate(ex41.q4, ex41.counterexample, "bag") == Bag([(1,)])
        assert evaluate(ex41.q1, ex41.counterexample, "bag") == Bag([(1,), (1,)])
        assert not equivalent_under_dependencies_bag(ex41.q1, ex41.q4, ex41.dependencies)

    def test_bag_set_inequivalence(self, ex41):
        assert ex41.counterexample.is_set_valued()
        assert evaluate(ex41.q1, ex41.counterexample, "bag-set") != evaluate(
            ex41.q4, ex41.counterexample, "bag-set"
        )
        assert not equivalent_under_dependencies_bag_set(
            ex41.q1, ex41.q4, ex41.dependencies
        )

    def test_sound_chase_results_are_q3_q2_q1(self, ex41):
        assert are_isomorphic(bag_chase(ex41.q4, ex41.dependencies).query, ex41.q3)
        assert are_isomorphic(bag_set_chase(ex41.q4, ex41.dependencies).query, ex41.q2)
        assert is_set_equivalent(set_chase(ex41.q4, ex41.dependencies).query, ex41.q1)

    def test_example_4_4_sigma4_not_regularized_and_not_key_based(self, ex41):
        sigma4 = _dependency(ex41.dependencies, "sigma4")
        assert not is_regularized(sigma4)
        assert not is_key_based_tgd(sigma4, ex41.dependencies)
        assert not is_key_based_tgd(sigma4, ex41.dependencies_without_sigma2)

    def test_example_4_4_q3_equivalent_to_q4_without_sigma2(self, ex41):
        sigma_prime = ex41.dependencies_without_sigma2
        assert equivalent_under_dependencies_bag(ex41.q3, ex41.q4, sigma_prime)
        assert equivalent_under_dependencies_bag_set(ex41.q3, ex41.q4, sigma_prime)

    def test_example_4_5_whole_sigma4_application_is_unsound(self, ex41):
        # Applying the non-regularized σ4 in its entirety yields
        # Q4'(X) :- p(X,Y), t(X,Y,W), u(X,Z), which is not equivalent to Q4.
        from repro.datalog import parse_query

        q4_prime = parse_query("Qp(X) :- p(X,Y), t(X,Y,W), u(X,Z)")
        sigma_prime = ex41.dependencies_without_sigma2
        assert not equivalent_under_dependencies_bag_set(q4_prime, ex41.q4, sigma_prime)
        # The paper's counterexample database for this claim:
        from repro.database import DatabaseInstance

        database = DatabaseInstance.from_dict(
            {"p": [(1, 2)], "t": [(1, 2, 3)], "u": [(1, 4), (1, 5)], "r": [], "s": []},
            ex41.schema,
        )
        assert evaluate(ex41.q4, database, "bag-set") == Bag([(1,)])
        assert evaluate(q4_prime, database, "bag-set") == Bag([(1,), (1,)])

    def test_example_4_9_and_d_1(self, ex41):
        # Not bag equivalent in general...
        assert evaluate(ex41.q3, ex41.counterexample_d1, "bag") != evaluate(
            ex41.q5, ex41.counterexample_d1, "bag"
        )
        # ...but bag equivalent on databases where S is a set (Theorem 4.2).
        assert equivalent_under_dependencies_bag(ex41.q3, ex41.q5, ex41.dependencies)

    def test_example_d_2_q7_vs_q8(self, ex41):
        from repro.database import DatabaseInstance

        # Build the Lemma D.1-style counterexample with m = 5 copies of R's tuple.
        database = DatabaseInstance.from_dict(
            {"p": [(1, 2)], "r": [(1,)] * 5, "s": [], "t": [], "u": []}, ex41.schema
        )
        assert evaluate(ex41.q7, database, "bag").multiplicity((1,)) == 25
        assert evaluate(ex41.q8, database, "bag").multiplicity((1,)) == 5
        assert not equivalent_under_dependencies_bag(ex41.q7, ex41.q8, ex41.dependencies)


class TestExample42And51:
    def test_sigma1_is_assignment_fixing(self, ex42):
        sigma1 = _dependency(ex42.dependencies, "sigma1")
        assert is_regularized(sigma1)
        assert is_assignment_fixing(ex42.query, sigma1, ex42.dependencies)

    def test_example_5_1_sigma4_assignment_fixing_for_q_prime(self, ex43):
        sigma4 = _dependency(ex43.dependencies, "sigma4")
        assert is_assignment_fixing(ex43.query_prime, sigma4, ex43.dependencies)


class TestExample43And47Deviation:
    """The printed Examples 4.3 / 4.7 are internally inconsistent; these tests
    document what the implementation (and a careful reading) actually gives."""

    def test_counterexample_database_violates_sigma5(self, ex43):
        sigma5 = _dependency(ex43.dependencies_47, "sigma5")
        assert not satisfies(ex43.counterexample_47, sigma5)
        assert not satisfies_all(ex43.counterexample_47, ex43.dependencies_47)

    def test_sigma4_is_assignment_fixing_after_full_chase(self, ex43):
        sigma4 = _dependency(ex43.dependencies, "sigma4")
        assert is_assignment_fixing(ex43.query, sigma4, ex43.dependencies)
        assert is_assignment_fixing(ex43.query, sigma4, ex43.dependencies_47)

    def test_chase_step_with_sigma4_is_in_fact_sound(self, ex43):
        # Q''(X) :- p(X,Y), r(X,Z), s(Z,W), s(X,T) is equivalent to Q under Σ'
        # for bag-set semantics (the egds pin the witnesses down uniquely).
        assert equivalent_under_dependencies_bag_set(
            ex43.query, ex43.chased_query_47, ex43.dependencies_47
        )


class TestExample46And48:
    def test_nu1_regularized_assignment_fixing_not_key_based(self, ex46):
        nu1 = _dependency(ex46.dependencies, "nu1")
        assert is_regularized(nu1)
        assert is_assignment_fixing(ex46.query, nu1, ex46.dependencies)
        assert not is_key_based_tgd(nu1, ex46.dependencies)

    def test_modified_chase_result_is_unsound(self, ex46):
        assert satisfies_all(ex46.counterexample, ex46.dependencies)
        assert evaluate(ex46.query, ex46.counterexample, "bag-set") == Bag([(1,), (1,)])
        assert evaluate(ex46.query_modified_chase, ex46.counterexample, "bag-set") == Bag(
            [(1,)]
        )

    def test_traditional_chase_result_is_sound(self, ex46):
        assert are_isomorphic(
            bag_set_chase(ex46.query, ex46.dependencies).query,
            ex46.query_traditional_chase,
        )
        assert equivalent_under_dependencies_bag(
            ex46.query, ex46.query_traditional_chase, ex46.dependencies
        )


class TestExamplesE1E2:
    def test_e1_key_based_step_unsound_over_bag_valued_relation(self, exE1):
        assert satisfies_all(exE1.counterexample, exE1.dependencies)
        assert not exE1.counterexample.is_set_valued(["p"])
        assert evaluate(exE1.query, exE1.counterexample, "bag") == Bag([("a",)])
        assert evaluate(exE1.chased_query, exE1.counterexample, "bag") == Bag(
            [("a",), ("a",)]
        )
        assert not decide_equivalence(
            exE1.query, exE1.chased_query, exE1.dependencies, "bag"
        ).equivalent

    def test_e2_non_key_based_step_unsound_under_bag_set(self, exE2):
        assert satisfies_all(exE2.counterexample, exE2.dependencies)
        assert exE2.counterexample.is_set_valued()
        assert evaluate(exE2.query, exE2.counterexample, "bag-set") == Bag([("a",)])
        assert evaluate(exE2.chased_query, exE2.counterexample, "bag-set") == Bag(
            [("a",), ("a",)]
        )
        assert not decide_equivalence(
            exE2.query, exE2.chased_query, exE2.dependencies, "bag-set"
        ).equivalent


class TestExampleRegistry:
    def test_all_examples_constructible(self):
        for name, constructor in PAPER_EXAMPLES.items():
            example = constructor()
            assert example is not None, name
