"""Unit tests for repro.core.terms."""

from __future__ import annotations

import pytest

from repro.core.terms import (
    Constant,
    FreshVariableFactory,
    Variable,
    constants_in,
    fresh_variable,
    is_constant,
    is_variable,
    term_from_value,
    variables_in,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Xyz")) == "Xyz"

    def test_ordering(self):
        assert Variable("A") < Variable("B")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("a") != Constant(1)

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant("1")}) == 2

    def test_str_of_string_constant_is_quoted(self):
        assert str(Constant("abc")) == "'abc'"

    def test_str_of_int_constant(self):
        assert str(Constant(7)) == "7"


class TestTermFromValue:
    def test_uppercase_string_is_variable(self):
        assert term_from_value("X") == Variable("X")
        assert term_from_value("Xyz1") == Variable("Xyz1")

    def test_underscore_string_is_variable(self):
        assert term_from_value("_tmp") == Variable("_tmp")

    def test_lowercase_string_is_constant(self):
        assert term_from_value("abc") == Constant("abc")

    def test_number_is_constant(self):
        assert term_from_value(3) == Constant(3)

    def test_existing_terms_pass_through(self):
        var = Variable("Q")
        const = Constant(5)
        assert term_from_value(var) is var
        assert term_from_value(const) is const

    def test_predicates(self):
        assert is_variable(Variable("X")) and not is_variable(Constant(1))
        assert is_constant(Constant(1)) and not is_constant(Variable("X"))


class TestFreshVariableFactory:
    def test_avoids_used_names(self):
        factory = FreshVariableFactory(["_v0", "_v1"])
        assert factory().name == "_v2"

    def test_hint_is_respected(self):
        factory = FreshVariableFactory(["Z"])
        assert factory(hint="W").name == "W"
        assert factory(hint="Z").name == "Z_1"

    def test_never_repeats(self):
        factory = FreshVariableFactory()
        names = {factory(hint="X").name for _ in range(10)}
        assert len(names) == 10

    def test_reserve(self):
        factory = FreshVariableFactory()
        factory.reserve(["_v0"])
        assert factory().name == "_v1"

    def test_fresh_variable_helper(self):
        fresh = fresh_variable([Variable("X"), "Y"], hint="X")
        assert fresh.name not in {"X", "Y"}


class TestIterators:
    def test_variables_in(self):
        terms = [Variable("X"), Constant(1), Variable("X")]
        assert list(variables_in(terms)) == [Variable("X"), Variable("X")]

    def test_constants_in(self):
        terms = [Variable("X"), Constant(1), Constant("a")]
        assert list(constants_in(terms)) == [Constant(1), Constant("a")]
