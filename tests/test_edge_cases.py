"""Edge-case and failure-injection tests across the library.

These exercise the corners the happy-path tests do not: chase failure on
constant conflicts, non-terminating dependency sets surfacing through the
higher-level APIs, queries with constants and repeated head terms, missing
relations, and degenerate inputs.
"""

from __future__ import annotations

import pytest

from repro.chase import ChaseFailedError, bag_chase, set_chase, sound_chase
from repro.core import is_bag_equivalent, is_set_equivalent
from repro.database import DatabaseInstance, canonical_database
from repro.datalog import parse_dependencies, parse_query
from repro.equivalence import decide_equivalence, equivalent_under_dependencies_set
from repro.evaluation import Bag, evaluate
from repro.exceptions import ChaseNonTerminationError
from repro.reformulation import c_and_b, is_sigma_minimal
from repro.semantics import Semantics


class TestChaseFailure:
    def test_egd_forcing_distinct_constants_fails_set_chase(self):
        sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,1), s(X,2)")
        with pytest.raises(ChaseFailedError):
            set_chase(query, sigma)

    def test_egd_failure_also_surfaces_in_sound_chase(self):
        sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z", set_valued=["s"])
        query = parse_query("Q(X) :- s(X,1), s(X,2)")
        with pytest.raises(ChaseFailedError):
            sound_chase(query, sigma, Semantics.BAG)

    def test_constants_that_agree_do_not_fail(self):
        sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,1), s(X,Y)")
        result = set_chase(query, sigma)
        # Y is identified with the constant 1.
        assert len(result.query.body) == 1
        assert result.query.body[0].is_ground() is False  # X still a variable


class TestNonTermination:
    sigma = parse_dependencies("e(X,Y) -> e(Y,Z)")

    def test_equivalence_test_reports_non_termination(self):
        q1 = parse_query("Q(X) :- e(X,Y)")
        q2 = parse_query("Q(X) :- e(X,Y), e(Y,Z)")
        with pytest.raises(ChaseNonTerminationError):
            equivalent_under_dependencies_set(q1, q2, self.sigma, max_steps=30)

    def test_reformulation_reports_non_termination(self):
        query = parse_query("Q(X) :- e(X,Y)")
        with pytest.raises(ChaseNonTerminationError):
            c_and_b(query, self.sigma, max_steps=30)

    def test_budget_is_configurable(self):
        # A terminating set is unaffected by a generous budget.
        sigma = parse_dependencies("e(X,Y) -> f(Y)")
        query = parse_query("Q(X) :- e(X,Y)")
        assert set_chase(query, sigma, max_steps=10).terminated


class TestConstantsAndHeads:
    def test_query_with_constant_head_term(self):
        sigma = parse_dependencies("p(X,Y) -> r(X)")
        query = parse_query("Q(X, 5) :- p(X,Y)")
        chased = set_chase(query, sigma).query
        assert chased.head_terms[1].value == 5  # type: ignore[union-attr]

    def test_repeated_head_variable(self):
        q1 = parse_query("Q(X, X) :- p(X,Y)")
        q2 = parse_query("Q(A, A) :- p(A,B)")
        q3 = parse_query("Q(A, B) :- p(A,B)")
        assert is_bag_equivalent(q1, q2)
        assert not is_set_equivalent(q1, q3)

    def test_constants_in_dependencies(self):
        sigma = parse_dependencies("p(X, 1) -> special(X)")
        matching = parse_query("Q(X) :- p(X, 1)")
        not_matching = parse_query("Q(X) :- p(X, 2)")
        assert "special" in set_chase(matching, sigma).query.predicates()
        assert "special" not in set_chase(not_matching, sigma).query.predicates()

    def test_evaluation_with_constants_in_query(self):
        instance = DatabaseInstance.from_dict({"p": [(1, "a"), (2, "b")]})
        query = parse_query("Q(X) :- p(X, 'a')")
        assert evaluate(query, instance, "set") == Bag([(1,)])

    def test_canonical_database_of_fully_ground_query(self):
        query = parse_query("Q(1) :- p(1, 2)")
        canonical = canonical_database(query)
        assert canonical.instance.relation("p").multiplicity((1, 2)) == 1
        assert canonical.head_tuple() == (1,)


class TestDegenerateInputs:
    def test_single_atom_query_reformulation(self):
        sigma = parse_dependencies("p(X,Y) -> r(X)")
        query = parse_query("Q(X) :- p(X,Y)")
        result = c_and_b(query, sigma, check_sigma_minimality=False)
        assert result.contains_isomorphic(query)

    def test_empty_dependency_set(self):
        query = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        verdict = decide_equivalence(query, parse_query("Q(A) :- p(A,B)"), [], "set")
        assert verdict.equivalent
        assert is_sigma_minimal(parse_query("Q(A) :- p(A,B)"), [], "set")

    def test_dependency_over_predicate_not_in_query(self, ex41):
        sigma = parse_dependencies("unrelated(X) -> alsounrelated(X)")
        chased = set_chase(ex41.q4, sigma)
        assert chased.step_count == 0

    def test_bag_chase_without_set_valued_relations_is_conservative(self):
        # No relation is declared set valued: no tgd may fire under bag semantics.
        sigma = parse_dependencies("""
            p(X,Y) -> r(X)
            p(X,Y) -> t(X,Z)
        """)
        query = parse_query("Q(X) :- p(X,Y)")
        assert bag_chase(query, sigma).query == query

    def test_evaluation_on_empty_instance(self):
        from repro.schema import DatabaseSchema

        schema = DatabaseSchema.from_arities({"p": 2})
        instance = DatabaseInstance.from_dict({}, schema)
        query = parse_query("Q(X) :- p(X,Y)")
        assert evaluate(query, instance, "bag").cardinality == 0

    def test_decide_equivalence_same_query_object(self, ex41):
        assert decide_equivalence(ex41.q4, ex41.q4, ex41.dependencies, "bag").equivalent
