"""Property-based tests (hypothesis) for the core data structures and the
paper's key invariants.

Strategies generate small random conjunctive queries, dependencies, and
bag-valued instances; the properties checked are the ones the paper's theory
rests on:

* homomorphism composition / identity, isomorphism is an equivalence,
* Proposition 2.1: bag equivalence ⇒ bag-set equivalence ⇒ set equivalence,
* evaluation semantics relationships (set = support of bag-set; bag over a
  set-valued instance = bag-set),
* canonical-database soundness (the frozen head tuple is in the set answer),
* chase soundness on random weakly-acyclic inputs: the chased query is
  set-equivalent to the original, and sound bag/bag-set chase preserves
  answers on random satisfying databases,
* Bag/Relation behave like multisets.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chase import bag_set_chase, set_chase
from repro.core import (
    are_isomorphic,
    is_bag_equivalent,
    is_bag_set_equivalent,
    is_set_equivalent,
    minimize,
)
from repro.core.atoms import Atom
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.database import DatabaseInstance, canonical_database, satisfies_all
from repro.dependencies import DependencySet, key_egds
from repro.evaluation import Bag, evaluate
from repro.semantics import Semantics

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
_PREDICATES = [("p", 2), ("r", 1), ("s", 2), ("t", 3)]
_VARIABLES = [Variable(name) for name in "XYZWV"]

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def atoms(draw):
    predicate, arity = draw(st.sampled_from(_PREDICATES))
    terms = [
        draw(st.one_of(st.sampled_from(_VARIABLES), st.integers(min_value=0, max_value=2)))
        for _ in range(arity)
    ]
    return Atom(predicate, terms)


@st.composite
def queries(draw, max_atoms: int = 4):
    body = draw(st.lists(atoms(), min_size=1, max_size=max_atoms))
    body_vars = sorted({v for atom in body for v in atom.variables()}, key=str)
    if body_vars:
        head_count = draw(st.integers(min_value=1, max_value=min(2, len(body_vars))))
        head = body_vars[:head_count]
    else:
        head = [0]
    return ConjunctiveQuery("Q", head, body)


@st.composite
def renamings(draw, query: ConjunctiveQuery):
    fresh = [Variable(f"R{i}") for i in range(10)]
    variables = query.all_variables()
    images = draw(
        st.lists(
            st.sampled_from(fresh), min_size=len(variables), max_size=len(variables),
            unique=True,
        )
    )
    return dict(zip(variables, images))


@st.composite
def instances(draw, max_tuples: int = 6):
    data: dict[str, list[tuple]] = {}
    for predicate, arity in _PREDICATES:
        rows = draw(
            st.lists(
                st.tuples(*[st.integers(min_value=0, max_value=3)] * arity),
                min_size=0,
                max_size=max_tuples,
            )
        )
        if rows:
            data[predicate] = rows
    if not data:
        data = {"p": [(0, 0)]}
    return DatabaseInstance.from_dict(data)


# --------------------------------------------------------------------------- #
# Query-model properties
# --------------------------------------------------------------------------- #
class TestQueryProperties:
    @_settings
    @given(queries())
    def test_isomorphism_reflexive(self, query):
        assert are_isomorphic(query, query)

    @_settings
    @given(st.data())
    def test_renaming_preserves_all_equivalences(self, data):
        query = data.draw(queries())
        renaming = data.draw(renamings(query))
        renamed = query.rename_variables(renaming)
        assert are_isomorphic(query, renamed)
        assert is_bag_equivalent(query, renamed)
        assert is_bag_set_equivalent(query, renamed)
        assert is_set_equivalent(query, renamed)

    @_settings
    @given(queries())
    def test_proposition_2_1_on_canonical_representation(self, query):
        # A query and its canonical representation are bag-set equivalent and
        # hence set equivalent.
        canonical = query.canonical_representation()
        assert is_bag_set_equivalent(query, canonical)
        assert is_set_equivalent(query, canonical)

    @_settings
    @given(queries(), queries())
    def test_implication_chain_between_random_queries(self, q1, q2):
        # Proposition 2.1: ≡B ⇒ ≡BS ⇒ ≡S, on arbitrary pairs.
        if is_bag_equivalent(q1, q2):
            assert is_bag_set_equivalent(q1, q2)
        if is_bag_set_equivalent(q1, q2):
            assert is_set_equivalent(q1, q2)

    @_settings
    @given(queries())
    def test_minimization_preserves_set_equivalence(self, query):
        minimal = minimize(query)
        assert is_set_equivalent(minimal, query)
        assert len(minimal.body) <= len(query.body)

    @_settings
    @given(queries())
    def test_duplicate_atom_is_bag_set_neutral(self, query):
        duplicated = query.add_atoms([query.body[0]])
        assert is_bag_set_equivalent(query, duplicated)

    @_settings
    @given(st.data())
    def test_normal_form_invariant_under_renaming(self, data):
        query = data.draw(queries())
        renaming = data.draw(renamings(query))
        renamed = query.rename_variables(renaming)
        assert query.normal_form() == renamed.normal_form()
        assert query.normal_form().normal_form() == query.normal_form()


class TestRoundTripProperties:
    @_settings
    @given(queries())
    def test_datalog_round_trip(self, query):
        from repro.datalog import parse_query, render_query

        assert parse_query(render_query(query)) == query

    @_settings
    @given(queries())
    def test_theorem_4_2_duplicate_over_set_enforced_relation(self, query):
        # Duplicating any subgoal is harmless for the Theorem 4.2 test when its
        # relation is set enforced, and detected when it is not.
        from repro.core import is_bag_equivalent_with_set_enforced

        atom = query.body[0]
        duplicated = query.add_atoms([atom])
        assert is_bag_equivalent_with_set_enforced(query, duplicated, {atom.predicate})
        already_duplicated = query.predicate_counts()[atom.predicate] != 1
        if not already_duplicated:
            assert not is_bag_equivalent_with_set_enforced(query, duplicated, set())


# --------------------------------------------------------------------------- #
# Evaluation properties
# --------------------------------------------------------------------------- #
class TestEvaluationProperties:
    @_settings
    @given(queries(), instances())
    def test_set_answer_is_support_of_bag_set_answer(self, query, instance):
        set_answer = evaluate(query, instance, Semantics.SET)
        bag_set_answer = evaluate(query, instance, Semantics.BAG_SET)
        assert set_answer.core_set() == bag_set_answer.core_set()
        assert set_answer.is_set()

    @_settings
    @given(queries(), instances())
    def test_bag_equals_bag_set_on_set_valued_instances(self, query, instance):
        deduplicated = instance.distinct()
        assert evaluate(query, deduplicated, Semantics.BAG) == evaluate(
            query, deduplicated, Semantics.BAG_SET
        )

    @_settings
    @given(queries(), instances())
    def test_bag_set_answer_dominates_on_duplicated_instance(self, query, instance):
        # Duplicating stored tuples never changes the bag-set answer but can
        # only increase the bag answer.
        doubled = instance.copy()
        for name in instance.relation_names():
            for row, count in instance.relation(name).iter_with_multiplicity():
                doubled.add_tuple(name, row, count)
        assert evaluate(query, doubled, Semantics.BAG_SET) == evaluate(
            query, instance, Semantics.BAG_SET
        )
        assert evaluate(query, instance, Semantics.BAG) <= evaluate(
            query, doubled, Semantics.BAG
        )

    @_settings
    @given(queries())
    def test_canonical_database_returns_head_tuple(self, query):
        canonical = canonical_database(query)
        answer = evaluate(query, canonical.instance, Semantics.SET)
        assert canonical.head_tuple() in answer

    @_settings
    @given(queries(), queries(), instances())
    def test_isomorphic_queries_have_equal_bag_answers(self, q1, q2, instance):
        if are_isomorphic(q1, q2):
            assert evaluate(q1, instance, Semantics.BAG) == evaluate(
                q2, instance, Semantics.BAG
            )


# --------------------------------------------------------------------------- #
# Chase properties
# --------------------------------------------------------------------------- #
_CHASE_DEPENDENCIES = DependencySet(
    [
        *key_egds("s", 2, [0], name_prefix="key_s"),
        *key_egds("t", 3, [0, 1], name_prefix="key_t"),
    ],
    set_valued_predicates=["s", "t"],
)


class TestChaseProperties:
    @_settings
    @given(queries())
    def test_egd_only_chase_never_adds_atoms(self, query):
        from repro.chase import ChaseFailedError

        try:
            chased = set_chase(query, _CHASE_DEPENDENCIES).query
        except ChaseFailedError:
            # The query forces two distinct constants to be equal under the
            # key egds; such queries are unsatisfiable under Σ.
            return
        assert len(chased.body) <= len(query.body)

    @_settings
    @given(queries(), instances())
    def test_sound_bag_set_chase_preserves_answers_on_satisfying_instances(
        self, query, instance
    ):
        from repro.chase import ChaseFailedError

        deduplicated = instance.distinct()
        if not satisfies_all(deduplicated, _CHASE_DEPENDENCIES, check_set_valuedness=False):
            return
        try:
            chased = bag_set_chase(query, _CHASE_DEPENDENCIES).query
        except ChaseFailedError:
            return
        assert evaluate(query, deduplicated, Semantics.BAG_SET) == evaluate(
            chased, deduplicated, Semantics.BAG_SET
        )


# --------------------------------------------------------------------------- #
# Multiset container properties
# --------------------------------------------------------------------------- #
class TestBagProperties:
    @_settings
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10))
    def test_bag_cardinality_and_core(self, rows):
        bag = Bag(rows)
        assert bag.cardinality == len(rows)
        assert bag.core_set() == set(map(tuple, rows))
        assert bag.distinct().cardinality == len(bag.core_set())

    @_settings
    @given(
        st.lists(st.tuples(st.integers(0, 3)), max_size=8),
        st.lists(st.tuples(st.integers(0, 3)), max_size=8),
    )
    def test_bag_union_is_commutative(self, rows1, rows2):
        assert Bag(rows1) + Bag(rows2) == Bag(rows2) + Bag(rows1)
        assert (Bag(rows1) + Bag(rows2)).cardinality == len(rows1) + len(rows2)

    @_settings
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=10))
    def test_projection_preserves_cardinality(self, rows):
        bag = Bag(rows)
        assert bag.project([0]).cardinality == bag.cardinality
