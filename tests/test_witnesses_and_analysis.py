"""Tests for counterexample witnesses and the reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    chase_statistics,
    equivalence_matrix,
    equivalence_matrix_table,
    reformulation_table,
    render_table,
)
from repro.chase import bag_chase, set_chase
from repro.database import satisfies_all
from repro.datalog import parse_query
from repro.equivalence import decide_equivalence
from repro.evaluation import evaluate
from repro.reformulation import bag_c_and_b
from repro.semantics import Semantics
from repro.witnesses import (
    find_counterexample,
    lemma_d1_counterexample,
)


class TestLemmaD1Construction:
    def test_example_d_2_style_pair(self, ex41):
        # Q7 has two r-subgoals, Q8 one; R is not set enforced.
        database = lemma_d1_counterexample(ex41.q7, ex41.q8, {"s", "t"})
        assert database is not None
        left = evaluate(ex41.q7, database, "bag")
        right = evaluate(ex41.q8, database, "bag")
        assert left != right

    def test_no_construction_when_counts_match(self, ex41):
        assert lemma_d1_counterexample(ex41.q3, ex41.q3, {"s", "t"}) is None

    def test_duplicates_over_set_enforced_relations_ignored(self, ex41):
        # Q5 differs from Q3 only on the duplicated s-subgoal; with S set
        # enforced the construction does not apply.
        assert lemma_d1_counterexample(ex41.q5, ex41.q3, {"s", "t"}) is None
        # Without the set-enforcement marker it does, and it separates them.
        database = lemma_d1_counterexample(ex41.q5, ex41.q3, set())
        assert database is not None
        assert evaluate(ex41.q5, database, "bag") != evaluate(ex41.q3, database, "bag")


class TestFindCounterexample:
    def test_example_4_1_q1_vs_q4_bag(self, ex41):
        witness = find_counterexample(ex41.q1, ex41.q4, ex41.dependencies, "bag")
        assert witness is not None
        assert satisfies_all(witness.database, ex41.dependencies)
        assert witness.left_answer != witness.right_answer
        assert "counterexample" in str(witness)

    def test_example_4_1_q1_vs_q4_bag_set(self, ex41):
        witness = find_counterexample(ex41.q1, ex41.q4, ex41.dependencies, "bag-set")
        assert witness is not None
        assert witness.database.is_set_valued()
        assert evaluate(ex41.q1, witness.database, "bag-set") != evaluate(
            ex41.q4, witness.database, "bag-set"
        )

    def test_example_e_1_bag_witness(self, exE1):
        witness = find_counterexample(
            exE1.query, exE1.chased_query, exE1.dependencies, "bag"
        )
        assert witness is not None
        assert not decide_equivalence(
            exE1.query, exE1.chased_query, exE1.dependencies, "bag"
        ).equivalent

    def test_example_e_2_bag_set_witness(self, exE2):
        witness = find_counterexample(
            exE2.query, exE2.chased_query, exE2.dependencies, "bag-set"
        )
        assert witness is not None

    def test_equivalent_pair_yields_no_witness(self, ex41):
        assert (
            find_counterexample(ex41.q3, ex41.q4, ex41.dependencies, "bag") is None
        )

    def test_witness_consistent_with_decision_procedure(self, ex41):
        # Soundness of the search: a witness exists only for inequivalent pairs.
        pairs = [(ex41.q1, ex41.q4), (ex41.q2, ex41.q4), (ex41.q3, ex41.q4)]
        for q_left, q_right in pairs:
            for semantics in ("bag", "bag-set"):
                witness = find_counterexample(
                    q_left, q_right, ex41.dependencies, semantics
                )
                equivalent = decide_equivalence(
                    q_left, q_right, ex41.dependencies, semantics
                ).equivalent
                if witness is not None:
                    assert not equivalent


class TestReporting:
    def test_render_table_alignment(self):
        table = render_table(["a", "bbbb"], [["x", 1], ["yyy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_render_table_without_rows(self):
        assert "metric" in render_table(["metric", "value"], [])

    def test_chase_statistics(self, ex41):
        result = bag_chase(ex41.q4, ex41.dependencies)
        stats = chase_statistics(result, ex41.q4)
        assert stats.total_steps == result.step_count
        assert stats.tgd_steps + stats.egd_steps == stats.total_steps
        assert stats.initial_body_size == 1
        assert stats.final_body_size == len(result.query.body)
        assert "total steps" in stats.as_table()

    def test_chase_statistics_without_original(self, ex41):
        result = set_chase(ex41.q4, ex41.dependencies)
        stats = chase_statistics(result)
        assert stats.final_body_size == len(result.query.body)
        assert stats.initial_body_size <= stats.final_body_size

    def test_equivalence_matrix_example_4_1(self, ex41):
        queries = {"Q1": ex41.q1, "Q2": ex41.q2, "Q3": ex41.q3, "Q4": ex41.q4}
        matrix = equivalence_matrix(queries, ex41.dependencies, Semantics.BAG)
        assert matrix[("Q3", "Q4")] is True
        assert matrix[("Q1", "Q4")] is False
        assert matrix[("Q4", "Q1")] is False
        assert matrix[("Q2", "Q2")] is True
        table = equivalence_matrix_table(queries, ex41.dependencies, Semantics.BAG)
        assert "✓" in table and "✗" in table

    def test_reformulation_table(self, ex41):
        result = bag_c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
        table = reformulation_table(result)
        assert "reformulations of Q4" in table
        assert "#subgoals" in table
        assert str(len(result.reformulations)) in table
