"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

DEPENDENCIES = """
p(X,Y) -> t(X,Y,W)
p(X,Y) -> r(X)
t(X,Y,Z) & t(X,Y,W) -> Z = W
"""

DDL = """
CREATE TABLE customer (cid INT PRIMARY KEY, cname TEXT);
CREATE TABLE orders (oid INT, cid INT,
                     FOREIGN KEY (cid) REFERENCES customer (cid));
"""


@pytest.fixture()
def deps_file(tmp_path):
    path = tmp_path / "deps.txt"
    path.write_text(DEPENDENCIES)
    return str(path)


@pytest.fixture()
def ddl_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(DDL)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_chase_arguments(self):
        args = build_parser().parse_args(
            ["chase", "--query", "Q(X) :- p(X,Y)", "--semantics", "bag"]
        )
        assert args.command == "chase" and args.semantics == "bag"


class TestChaseCommand:
    def test_chase_from_file(self, capsys, deps_file):
        code = main(
            [
                "chase",
                "--query",
                "Q(X) :- p(X,Y)",
                "--dependencies",
                deps_file,
                "--set-valued",
                "t",
                "--semantics",
                "bag",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "t(" in output and "r(" not in output  # r is not set valued

    def test_chase_inline_dependencies_with_steps(self, capsys):
        code = main(
            [
                "chase",
                "--query",
                "Q(X) :- p(X,Y)",
                "--dependencies",
                DEPENDENCIES,
                "--semantics",
                "bag-set",
                "--show-steps",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "tgd step" in output
        assert "r(X)" in output  # bag-set chase applies the full tgd

    def test_chase_without_dependencies(self, capsys):
        code = main(["chase", "--query", "Q(X) :- p(X,Y)", "--semantics", "set"])
        assert code == 0
        assert "p(X, Y)" in capsys.readouterr().out


class TestEquivalenceCommand:
    def test_equivalent_pair(self, capsys, deps_file):
        code = main(
            [
                "equivalence",
                "--query",
                "Q(X) :- p(X,Y)",
                "--other",
                "Q2(X) :- p(X,Y), t(X,Y,W)",
                "--dependencies",
                deps_file,
                "--set-valued",
                "t",
                "--semantics",
                "bag",
                "--verbose",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert output.startswith("equivalent")
        assert "chased left" in output

    def test_inequivalent_pair_exit_code(self, capsys, deps_file):
        code = main(
            [
                "equivalence",
                "--query",
                "Q(X) :- p(X,Y)",
                "--other",
                "Q2(X) :- p(X,Y), r(X)",
                "--dependencies",
                deps_file,
                "--semantics",
                "bag",
            ]
        )
        assert code == 1
        assert "not equivalent" in capsys.readouterr().out

    def test_all_semantics(self, capsys, deps_file):
        code = main(
            [
                "equivalence",
                "--query",
                "Q(X) :- p(X,Y)",
                "--other",
                "Q2(X) :- p(X,Y), r(X)",
                "--dependencies",
                deps_file,
                "--semantics",
                "all",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0  # equivalent under at least one semantics (set / bag-set)
        assert "bag" in output and "set" in output

    def test_parse_error_reported(self, capsys):
        code = main(
            [
                "equivalence",
                "--query",
                "not a query",
                "--other",
                "Q(X) :- p(X,Y)",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestReformulateCommand:
    def test_minimal_reformulations(self, capsys, deps_file):
        code = main(
            [
                "reformulate",
                "--query",
                "Q(X) :- p(X,Y), t(X,Y,W), r(X)",
                "--dependencies",
                deps_file,
                "--set-valued",
                "t",
                "--semantics",
                "bag-set",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "universal plan" in output
        assert "Σ-minimal" in output
        assert "Q(X) :- p(X, Y)" in output

    def test_show_all(self, capsys, deps_file):
        code = main(
            [
                "reformulate",
                "--query",
                "Q(X) :- p(X,Y), t(X,Y,W)",
                "--dependencies",
                deps_file,
                "--set-valued",
                "t",
                "--semantics",
                "bag",
                "--show-all",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "equivalent reformulations" in output


class TestBatchCommand:
    def test_batch_decides_pairs(self, capsys, deps_file):
        code = main(
            [
                "batch",
                "--pairs",
                "Q1(X) :- p(X,Y) ; Q2(X) :- p(X,Y), t(X,Y,W)\n"
                "Q1(X) :- p(X,Y) ; Q3(X) :- p(X,Y), r(X)",
                "--dependencies",
                deps_file,
                "--set-valued",
                "t",
                "--semantics",
                "bag",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "[0] Q1 vs Q2: equivalent" in output
        assert "[1] Q1 vs Q3: not equivalent" in output
        assert "2 decided, 0 failed" in output

    @pytest.mark.parametrize(
        "line", ["Q1(X) :- p(X,Y)", "; Q1(X) :- p(X,Y)", "Q1(X) :- p(X,Y) ;"]
    )
    def test_batch_malformed_pair_line(self, capsys, line):
        code = main(["batch", "--pairs", line])
        assert code == 2
        assert "pairs line 1" in capsys.readouterr().err

    def test_batch_jobs(self, capsys, deps_file):
        code = main(
            [
                "batch",
                "--pairs",
                "Q1(X) :- p(X,Y) ; Q2(X) :- p(X,Y), t(X,Y,W)\n"
                "Q1(X) :- p(X,Y) ; Q3(X) :- p(X,Y), r(X)",
                "--dependencies",
                deps_file,
                "--set-valued",
                "t",
                "--semantics",
                "bag",
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        assert "2 decided, 0 failed" in capsys.readouterr().out


class TestSqlCommand:
    def test_sql_pipeline(self, capsys, ddl_file):
        code = main(
            [
                "sql",
                "--ddl",
                ddl_file,
                "--query",
                "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "evaluation semantics: bag" in output
        assert "SELECT t1.oid FROM orders t1;" in output

    def test_sql_inline_ddl_and_semantics_override(self, capsys):
        code = main(
            [
                "sql",
                "--ddl",
                DDL,
                "--query",
                "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid",
                "--semantics",
                "set",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "evaluation semantics: set" in output
        assert "SELECT DISTINCT" in output
