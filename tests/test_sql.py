"""Tests for the SQL front end: lexer, parser, DDL translation, query
translation, and SQL rendering."""

from __future__ import annotations

import pytest

from repro.core.aggregate import AggregateFunction, AggregateQuery
from repro.core.atoms import Atom
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.exceptions import ParseError, TranslationError
from repro.paperlib import ORDERS_DDL
from repro.semantics import Semantics
from repro.sql import (
    aggregate_query_to_sql,
    parse_create_table,
    parse_select,
    parse_statements,
    query_to_sql,
    schema_from_ddl,
    translate_select,
    translate_sql,
)
from repro.sql.lexer import tokenize


@pytest.fixture(scope="module")
def orders_schema():
    return schema_from_ddl(ORDERS_DDL)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT distinct FROM")
        assert [t.kind for t in tokens] == ["keyword"] * 3
        assert tokens[0].value == "select"

    def test_strings_numbers_punct(self):
        tokens = tokenize("x = 'abc', 3.5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "punct", "string", "punct", "number"]
        assert tokens[2].value == "abc"

    def test_comment_skipped(self):
        tokens = tokenize("select -- nothing\n x")
        assert len(tokens) == 2

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("select @")


class TestSelectParser:
    def test_simple_select(self):
        stmt = parse_select(
            "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid AND c.cname = 'Ann'"
        )
        assert len(stmt.select_items) == 1
        assert len(stmt.from_tables) == 2
        assert len(stmt.where_conditions) == 2
        assert not stmt.distinct

    def test_distinct_and_alias_forms(self):
        stmt = parse_select("SELECT DISTINCT c.cname AS name FROM customer AS c")
        assert stmt.distinct
        assert stmt.select_items[0].alias == "name"
        assert stmt.from_tables[0].alias == "c"

    def test_aggregate_and_group_by(self):
        stmt = parse_select(
            "SELECT c.cid, COUNT(*) FROM customer c GROUP BY c.cid"
        )
        assert stmt.has_aggregate()
        assert len(stmt.group_by) == 1

    def test_literal_flips_to_right(self):
        stmt = parse_select("SELECT o.oid FROM orders o WHERE 5 = o.cid")
        condition = stmt.where_conditions[0]
        assert condition.left.column == "cid"

    def test_literal_equals_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT o.oid FROM orders o WHERE 1 = 2")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t ORDER BY a")

    def test_statement_splitter(self):
        statements = parse_statements(ORDERS_DDL + "SELECT cid FROM customer;")
        assert len(statements) == 4
        with pytest.raises(ParseError):
            parse_statements("DROP TABLE x;")


class TestCreateTableParser:
    def test_column_and_table_constraints(self):
        stmt = parse_create_table(
            """CREATE TABLE t (
                a INT PRIMARY KEY,
                b VARCHAR(20) NOT NULL,
                c INT UNIQUE,
                UNIQUE (b, c),
                FOREIGN KEY (c) REFERENCES other (x)
            )"""
        )
        assert stmt.column_names() == ("a", "b", "c")
        assert stmt.effective_primary_key() == ("a",)
        assert ("c",) in stmt.effective_unique_constraints()
        assert ("b", "c") in stmt.effective_unique_constraints()
        assert stmt.foreign_keys[0].referenced_table == "other"

    def test_table_level_primary_key(self):
        stmt = parse_create_table("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.effective_primary_key() == ("a", "b")


class TestSchemaFromDDL:
    def test_schema_shape(self, orders_schema):
        schema, dependencies = orders_schema
        assert schema.arity("orders") == 3
        assert schema.relation("customer").attribute_names == ("cid", "cname")
        # PRIMARY KEY tables are set valued; orders (no key) is not.
        assert schema.set_valued_relations() == {"customer", "product"}
        assert dependencies.set_valued_predicates == {"customer", "product"}

    def test_dependencies_generated(self, orders_schema):
        _, dependencies = orders_schema
        assert len(dependencies.egds()) == 2  # one key egd per 2-ary keyed table
        assert len(dependencies.tgds()) == 2  # two foreign keys

    def test_unknown_foreign_key_target(self):
        with pytest.raises(TranslationError):
            schema_from_ddl(
                "CREATE TABLE a (x INT, FOREIGN KEY (x) REFERENCES missing (y));"
            )


class TestTranslateSelect:
    def test_join_query_translation(self, orders_schema):
        schema, _ = orders_schema
        translated = translate_sql(
            "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid",
            schema,
        )
        query = translated.query
        assert isinstance(query, ConjunctiveQuery)
        assert query.predicate_counts() == {"orders": 1, "customer": 1}
        # The join condition produces a shared variable.
        orders_atom = next(a for a in query.body if a.predicate == "orders")
        customer_atom = next(a for a in query.body if a.predicate == "customer")
        assert orders_atom.terms[1] == customer_atom.terms[0]

    def test_semantics_assignment(self, orders_schema):
        schema, _ = orders_schema
        bag = translate_sql("SELECT o.oid FROM orders o", schema)
        assert bag.semantics is Semantics.BAG
        bag_set = translate_sql("SELECT c.cname FROM customer c", schema)
        assert bag_set.semantics is Semantics.BAG_SET
        distinct = translate_sql("SELECT DISTINCT o.oid FROM orders o", schema)
        assert distinct.semantics is Semantics.SET

    def test_constant_condition(self, orders_schema):
        schema, _ = orders_schema
        translated = translate_sql(
            "SELECT o.oid FROM orders o WHERE o.cid = 7", schema
        )
        orders_atom = translated.query.body[0]
        assert orders_atom.terms[1] == Constant(7)

    def test_unqualified_columns_resolved(self, orders_schema):
        schema, _ = orders_schema
        translated = translate_sql(
            "SELECT oid FROM orders, customer WHERE cname = 'Ann'", schema
        )
        customer_atom = next(
            a for a in translated.query.body if a.predicate == "customer"
        )
        assert customer_atom.terms[1] == Constant("Ann")
        assert len(translated.query.head_terms) == 1

    def test_ambiguous_column_rejected(self, orders_schema):
        schema, _ = orders_schema
        with pytest.raises(TranslationError):
            translate_sql(
                "SELECT cid FROM orders, customer", schema
            )

    def test_unknown_table_and_column(self, orders_schema):
        schema, _ = orders_schema
        with pytest.raises(TranslationError):
            translate_sql("SELECT x.a FROM missing x", schema)
        with pytest.raises(TranslationError):
            translate_sql("SELECT o.nope FROM orders o", schema)

    def test_duplicate_alias_rejected(self, orders_schema):
        schema, _ = orders_schema
        with pytest.raises(TranslationError):
            translate_sql("SELECT o.oid FROM orders o, customer o", schema)

    def test_aggregate_translation(self, orders_schema):
        schema, _ = orders_schema
        translated = translate_sql(
            "SELECT o.cid, COUNT(*) FROM orders o GROUP BY o.cid", schema
        )
        assert isinstance(translated.query, AggregateQuery)
        assert translated.query.aggregate.function is AggregateFunction.COUNT_STAR
        assert translated.is_aggregate

    def test_sum_aggregate_argument(self, orders_schema):
        schema, _ = orders_schema
        translated = translate_sql(
            "SELECT o.cid, SUM(o.pid) FROM orders o GROUP BY o.cid", schema
        )
        assert translated.query.aggregate.function is AggregateFunction.SUM
        assert isinstance(translated.query.aggregate.argument, Variable)

    def test_multiple_aggregates_rejected(self, orders_schema):
        schema, _ = orders_schema
        with pytest.raises(TranslationError):
            translate_sql(
                "SELECT SUM(o.pid), COUNT(*) FROM orders o", schema
            )


class TestRenderSQL:
    def test_round_trip_join_query(self, orders_schema):
        schema, _ = orders_schema
        original = translate_sql(
            "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid", schema
        ).query
        sql = query_to_sql(original, schema)
        assert "FROM orders t1, customer t2" in sql
        reparsed = translate_sql(sql, schema).query
        from repro.core import are_isomorphic

        assert are_isomorphic(original, reparsed)

    def test_distinct_added_for_set_semantics(self, orders_schema):
        schema, _ = orders_schema
        query = translate_sql("SELECT o.oid FROM orders o", schema).query
        assert query_to_sql(query, schema, Semantics.SET).startswith("SELECT DISTINCT")
        assert not query_to_sql(query, schema, Semantics.BAG).startswith("SELECT DISTINCT")

    def test_constants_rendered_as_filters(self, orders_schema):
        schema, _ = orders_schema
        query = translate_sql(
            "SELECT o.oid FROM orders o WHERE o.cid = 7", schema
        ).query
        assert "t1.cid = 7" in query_to_sql(query, schema)

    def test_aggregate_rendering_round_trip(self, orders_schema):
        schema, _ = orders_schema
        query = translate_sql(
            "SELECT o.cid, SUM(o.pid) FROM orders o GROUP BY o.cid", schema
        ).query
        sql = aggregate_query_to_sql(query, schema)
        assert "SUM" in sql and "GROUP BY" in sql
        reparsed = translate_sql(sql, schema).query
        assert reparsed.aggregate.function is AggregateFunction.SUM

    def test_unknown_relation_rejected(self, orders_schema):
        schema, _ = orders_schema
        query = ConjunctiveQuery("Q", ["X"], [Atom("mystery", ["X"])])
        with pytest.raises(TranslationError):
            query_to_sql(query, schema)
