"""Tests for the query-evaluation engine: Bag, assignments, set/bag/bag-set
semantics (Section 2.2), and aggregate evaluation (Section 2.5)."""

from __future__ import annotations

import pytest

from repro.core.aggregate import AggregateQuery, AggregateTerm
from repro.core.atoms import Atom
from repro.database import DatabaseInstance
from repro.datalog import parse_aggregate_query, parse_query
from repro.evaluation import (
    Bag,
    aggregate_answers_agree,
    answers_agree,
    evaluate,
    evaluate_aggregate,
    evaluate_all_semantics,
    evaluate_bag,
    evaluate_bag_set,
    evaluate_set,
    iter_satisfying_assignments,
)
from repro.exceptions import EvaluationError
from repro.semantics import Semantics


class TestBag:
    def test_add_and_multiplicity(self):
        bag = Bag([(1,), (1,), (2,)])
        assert bag.multiplicity((1,)) == 2
        assert bag.cardinality == 3
        assert bag.core_set() == {(1,), (2,)}
        assert not bag.is_set()
        assert bag.distinct().is_set()

    def test_equality(self):
        assert Bag([(1,), (2,)]) == Bag([(2,), (1,)])
        assert Bag([(1,), (1,)]) != Bag([(1,)])
        assert Bag([(1,), (2,)]) == {(1,), (2,)}
        assert Bag([(1,), (1,)]) != {(1,)}

    def test_sub_bag_and_union(self):
        small, large = Bag([(1,)]), Bag([(1,), (1,), (2,)])
        assert small <= large
        assert not large <= small
        assert (small + small).multiplicity((1,)) == 2

    def test_projection(self):
        bag = Bag([(1, "a"), (1, "b"), (1, "a")])
        projected = bag.project([0])
        assert projected.multiplicity((1,)) == 3

    def test_invalid_multiplicity(self):
        with pytest.raises(ValueError):
            Bag().add((1,), 0)

    def test_iteration_repeats_duplicates(self):
        assert sorted(Bag([(1,), (1,)])) == [(1,), (1,)]


class TestAssignments:
    def test_join_enumeration(self, small_instance):
        atoms = [Atom("p", ["X", "Y"]), Atom("s", ["Y", "Z"])]
        assignments = list(iter_satisfying_assignments(atoms, small_instance))
        # p: (1,2),(1,3),(2,3); s: (2,5),(3,5),(3,6) -> joins: (1,2,5),(1,3,5),(1,3,6),(2,3,5),(2,3,6)
        assert len(assignments) == 5

    def test_constants_in_atoms(self, small_instance):
        atoms = [Atom("p", [1, "Y"])]
        assignments = list(iter_satisfying_assignments(atoms, small_instance))
        assert len(assignments) == 2

    def test_repeated_variables(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 1), (1, 2)]})
        atoms = [Atom("p", ["X", "X"])]
        assert len(list(iter_satisfying_assignments(atoms, instance))) == 1

    def test_fixed_bindings(self, small_instance):
        from repro.core.terms import Variable

        atoms = [Atom("p", ["X", "Y"])]
        assignments = list(
            iter_satisfying_assignments(atoms, small_instance, fixed={Variable("X"): 2})
        )
        assert len(assignments) == 1 and assignments[0][Variable("Y")] == 3

    def test_missing_relation_is_empty(self, small_instance):
        atoms = [Atom("zzz", ["X"])]
        assert list(iter_satisfying_assignments(atoms, small_instance)) == []


class TestSemanticsEnum:
    def test_from_name(self):
        assert Semantics.from_name("bag") is Semantics.BAG
        assert Semantics.from_name("BAG_SET") is Semantics.BAG_SET
        assert Semantics.from_name("set") is Semantics.SET
        assert Semantics.from_name(Semantics.BAG) is Semantics.BAG
        with pytest.raises(ValueError):
            Semantics.from_name("nonsense")


class TestEvaluation:
    def test_set_vs_bag_set_on_projection(self):
        # Projection creates duplicate answers under bag-set semantics.
        instance = DatabaseInstance.from_dict({"p": [(1, 2), (1, 3)]})
        query = parse_query("Q(X) :- p(X,Y)")
        assert evaluate_set(query, instance) == Bag([(1,)])
        assert evaluate_bag_set(query, instance) == Bag([(1,), (1,)])

    def test_bag_multiplicities_multiply(self):
        # Section 2.2: each assignment contributes the product of stored multiplicities.
        instance = DatabaseInstance.from_dict(
            {"p": [(1, 2), (1, 2), (1, 2)], "r": [(2,), (2,)]}
        )
        query = parse_query("Q(X) :- p(X,Y), r(Y)")
        assert evaluate_bag(query, instance).multiplicity((1,)) == 6
        assert evaluate_bag_set(query, instance).multiplicity((1,)) == 1

    def test_self_join_under_bag_semantics(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2), (1, 2)]})
        query = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        # One assignment (Y=Z=2), multiplicity 2*2 = 4.
        assert evaluate_bag(query, instance).multiplicity((1,)) == 4
        assert evaluate_bag_set(query, instance).multiplicity((1,)) == 1

    def test_example_4_1_counterexample_multiplicities(self, ex41):
        # The heart of Example 4.1: Q4(D,B) = {{(1)}} while Q1(D,B) = {{(1),(1)}}.
        assert evaluate(ex41.q4, ex41.counterexample, "bag") == Bag([(1,)])
        assert evaluate(ex41.q1, ex41.counterexample, "bag") == Bag([(1,), (1,)])
        # Same verdict under bag-set semantics (the database is set valued).
        assert evaluate(ex41.q4, ex41.counterexample, "bag-set") == Bag([(1,)])
        assert evaluate(ex41.q1, ex41.counterexample, "bag-set") == Bag([(1,), (1,)])

    def test_example_d_1_multiplicities(self, ex41):
        # Example D.1: Q3(D,B) = {{(1),(1)}} and Q5(D,B) has four copies.
        assert evaluate(ex41.q3, ex41.counterexample_d1, "bag").multiplicity((1,)) == 2
        assert evaluate(ex41.q5, ex41.counterexample_d1, "bag").multiplicity((1,)) == 4

    def test_example_e_1_and_e_2(self, exE1, exE2):
        assert evaluate(exE1.query, exE1.counterexample, "bag") == Bag([("a",)])
        assert evaluate(exE1.chased_query, exE1.counterexample, "bag") == Bag([("a",), ("a",)])
        assert evaluate(exE2.query, exE2.counterexample, "bag-set") == Bag([("a",)])
        assert evaluate(exE2.chased_query, exE2.counterexample, "bag-set") == Bag(
            [("a",), ("a",)]
        )

    def test_arity_mismatch_raises(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2)]})
        query = parse_query("Q(X) :- p(X,Y,Z)")
        with pytest.raises(EvaluationError):
            evaluate(query, instance, "set")

    def test_missing_relation_gives_empty_answer(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2)]})
        query = parse_query("Q(X) :- p(X,Y), zzz(Y)")
        assert evaluate(query, instance, "bag").cardinality == 0

    def test_answers_agree_and_all_semantics(self, ex41):
        assert not answers_agree(ex41.q1, ex41.q4, ex41.counterexample, "bag")
        assert answers_agree(ex41.q1, ex41.q4, ex41.counterexample, "set")
        results = evaluate_all_semantics(ex41.q4, ex41.counterexample)
        assert set(results) == set(Semantics)

    def test_constants_in_head(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2)]})
        query = parse_query("Q(X, 9) :- p(X,Y)")
        assert evaluate(query, instance, "set") == Bag([(1, 9)])


class TestAggregateEvaluation:
    instance = DatabaseInstance.from_dict(
        {"sales": [(1, 10), (1, 20), (2, 5)], "emp": [(1,), (2,), (3,)]}
    )

    def test_sum(self):
        query = parse_aggregate_query("Q(X, sum(Y)) :- sales(X,Y)")
        assert evaluate_aggregate(query, self.instance) == Bag([(1, 30), (2, 5)])

    def test_count(self):
        query = parse_aggregate_query("Q(X, count(Y)) :- sales(X,Y)")
        assert evaluate_aggregate(query, self.instance) == Bag([(1, 2), (2, 1)])

    def test_count_star(self):
        query = parse_aggregate_query("Q(X, count(*)) :- sales(X,Y)")
        assert evaluate_aggregate(query, self.instance) == Bag([(1, 2), (2, 1)])

    def test_max_and_min(self):
        maximum = parse_aggregate_query("Q(X, max(Y)) :- sales(X,Y)")
        minimum = parse_aggregate_query("Q(X, min(Y)) :- sales(X,Y)")
        assert evaluate_aggregate(maximum, self.instance) == Bag([(1, 20), (2, 5)])
        assert evaluate_aggregate(minimum, self.instance) == Bag([(1, 10), (2, 5)])

    def test_duplicate_sensitivity_of_sum(self):
        # A cartesian join with emp (3 tuples) triples every group's
        # contribution under bag-set core evaluation: sum is sensitive to the
        # extra assignments, max is not (Theorem 2.3 intuition).
        base = parse_aggregate_query("Q(X, sum(Y)) :- sales(X,Y)")
        inflated = parse_aggregate_query("Q(X, sum(Y)) :- sales(X,Y), emp(Z)")
        assert evaluate_aggregate(inflated, self.instance) == Bag([(1, 90), (2, 15)])
        assert evaluate_aggregate(base, self.instance) != evaluate_aggregate(
            inflated, self.instance
        )
        base_max = parse_aggregate_query("Q(X, max(Y)) :- sales(X,Y)")
        inflated_max = parse_aggregate_query("Q(X, max(Y)) :- sales(X,Y), emp(Z)")
        assert aggregate_answers_agree(base_max, inflated_max, self.instance)

    def test_grouping_on_empty_answer(self):
        query = parse_aggregate_query("Q(X, sum(Y)) :- sales(X,Y), emp(X), emp(Y)")
        assert evaluate_aggregate(query, self.instance).cardinality == 0

    def test_no_grouping_attributes(self):
        query = AggregateQuery(
            "Q", [], AggregateTerm("sum", "Y"), [Atom("sales", ["X", "Y"])]
        )
        assert evaluate_aggregate(query, self.instance) == Bag([(35,)])
