"""The static Σ/query analyzer: diagnostics, certificates, prechecks, CLI.

Golden coverage per diagnostic code, machine verification of the
termination certificate and witness cycle (including JSON round trips),
the Session precheck modes (strict refusal before any chase step, budget
seeding from the certificate), the ``repro check`` CLI contract, corpus
replay, and a 500-case seeded property test that the static chase-depth
bound dominates the rounds the chase actually takes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import PrecheckFailedError, Session, parse_dependencies, parse_query
from repro.analysis.static import (
    DIAGNOSTIC_CODES,
    AnalysisReport,
    CycleWitness,
    Severity,
    TerminationCertificate,
    analyze,
    certify,
)
from repro.chase.sound_chase import sound_chase
from repro.chase.steps import ChaseFailedError
from repro.cli import main
from repro.core.atoms import EqualityAtom
from repro.core.terms import Constant
from repro.database import DatabaseInstance
from repro.datalog import render_dependency
from repro.dependencies.base import EGD
from repro.dependencies.weak_acyclicity import is_weakly_acyclic
from repro.exceptions import ChaseNonTerminationError
from repro.fuzz import generate_block, load_corpus_file
from repro.fuzz.corpus import iter_corpus_paths
from repro.semantics import Semantics

CORPUS_DIR = Path(__file__).parent / "corpus"

CYCLIC = "r(X, Y) -> r(Y, Z)"
ACYCLIC = """
p(X, Y) -> q(X, Y)
q(X, Y) -> s(X, Y)
"""


def _codes(report):
    return [diagnostic.code for diagnostic in report.diagnostics]


def _diagnostic(report, code):
    matching = [d for d in report.diagnostics if d.code == code]
    assert matching, f"no {code} diagnostic in {_codes(report)}"
    return matching[0]


# --------------------------------------------------------------------------- #
# golden output per diagnostic code
# --------------------------------------------------------------------------- #
class TestDiagnosticCodes:
    def test_sigma_certified(self):
        report = analyze(parse_dependencies(ACYCLIC))
        diagnostic = _diagnostic(report, "sigma-certified")
        assert diagnostic.severity is Severity.INFO
        assert diagnostic.subject == "Σ"
        assert report.certified and report.ok
        assert report.exit_code() == 0

    def test_sigma_not_weakly_acyclic(self):
        report = analyze(parse_dependencies(CYCLIC))
        diagnostic = _diagnostic(report, "sigma-not-weakly-acyclic")
        assert diagnostic.severity is Severity.ERROR
        assert "⇒" in diagnostic.message  # the rendered witness cycle
        assert diagnostic.data["witness"]  # structured edges ride along
        assert not report.certified and not report.ok
        assert report.exit_code() == 2

    def test_sigma_certified_after_regularization(self):
        # Cyclic as written (special self-loop p[0] ⇒ p[0] through the
        # existential W), but regularize() splits the conclusion and the
        # fragment containing p(W) has an empty frontier — no special edges.
        sigma = parse_dependencies("p(X) -> q(X, Z) & p(W)")
        assert not is_weakly_acyclic(sigma)
        report = analyze(sigma)
        _diagnostic(report, "sigma-certified-after-regularization")
        assert report.certified
        assert report.certificate.verify(sigma)

    def test_arity_conflict(self):
        report = analyze(parse_dependencies("p(X) -> q(X)\nq(X, Y) -> p(X)"))
        diagnostic = _diagnostic(report, "arity-conflict")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.subject == "q"
        assert sorted(diagnostic.data["arities"]) == [1, 2]
        assert report.exit_code() == 2

    def test_arity_conflict_against_instance(self):
        instance = DatabaseInstance.from_dict({"p": [[1, 2]]})
        report = analyze(
            parse_dependencies("p(X) -> q(X)"), instance=instance
        )
        diagnostic = _diagnostic(report, "arity-conflict")
        assert "database instance" in diagnostic.message

    def test_rule_not_range_restricted(self):
        report = analyze(parse_dependencies("p(X) -> q(Z)"))
        diagnostic = _diagnostic(report, "rule-not-range-restricted")
        assert diagnostic.severity is Severity.WARNING
        assert report.exit_code() == 1

    def test_unused_premise_atom(self):
        report = analyze(parse_dependencies("p(X) & guard(W) -> q(X)"))
        diagnostic = _diagnostic(report, "unused-premise-atom")
        assert "guard" in diagnostic.data["atom"]
        assert diagnostic.data["position"] == 1

    def test_query_cross_product(self):
        report = analyze(
            parse_dependencies(ACYCLIC),
            queries=[parse_query("Q(X) :- p(X, X), r(Y, Y)")],
        )
        diagnostic = _diagnostic(report, "query-cross-product")
        assert len(diagnostic.data["components"]) == 2

    def test_connected_query_is_clean(self):
        report = analyze(
            parse_dependencies(ACYCLIC),
            queries=[parse_query("Q(X) :- p(X, Y), q(Y, Z)")],
        )
        assert "query-cross-product" not in _codes(report)

    def test_egd_trivial(self):
        report = analyze(parse_dependencies("p(X, Y) -> X = X"))
        _diagnostic(report, "egd-trivial")

    def test_egd_always_failing(self):
        egd = EGD(
            list(parse_dependencies("p(X, Y) -> X = Y"))[0].premise,
            [EqualityAtom(Constant(1), Constant(2))],
        )
        report = analyze([egd])
        diagnostic = _diagnostic(report, "egd-always-failing")
        assert "denial" in diagnostic.hint

    def test_dependency_subsumed(self):
        sigma = parse_dependencies(
            """
            p(X, Y) -> q(X, Y)
            p(X, Y) & r(X, X) -> q(X, Y)
            """
        )
        report = analyze(sigma)
        diagnostic = _diagnostic(report, "dependency-subsumed")
        # The more specific rule is implied by the more general one.
        assert diagnostic.data["implied_by_index"] == 0
        assert diagnostic.data["index"] == 1

    def test_subsumption_can_be_disabled(self):
        sigma = parse_dependencies("p(X) -> q(X)\np(X) -> q(X)")
        assert "dependency-subsumed" in _codes(analyze(sigma))
        assert "dependency-subsumed" not in _codes(
            analyze(sigma, subsumption=False)
        )

    def test_diagnostics_sorted_most_severe_first(self):
        report = analyze(
            parse_dependencies("r(X, Y) -> r(Y, Z)\np(X) -> q(W)")
        )
        ranks = [d.severity.rank for d in report.diagnostics]
        assert ranks == sorted(ranks, reverse=True)

    def test_every_code_in_registry_is_reachable_or_documented(self):
        # The registry is the contract for README and the golden tests above;
        # every code above must exist in it, and severities must be stable.
        assert set(DIAGNOSTIC_CODES) == {
            "sigma-not-weakly-acyclic",
            "arity-conflict",
            "rule-not-range-restricted",
            "unused-premise-atom",
            "query-cross-product",
            "egd-trivial",
            "egd-always-failing",
            "dependency-subsumed",
            "sigma-certified",
            "sigma-certified-after-regularization",
        }


# --------------------------------------------------------------------------- #
# certificates and witnesses
# --------------------------------------------------------------------------- #
class TestCertificates:
    def test_certificate_verifies_and_round_trips(self):
        sigma = parse_dependencies(ACYCLIC)
        certificate, witness = certify(sigma)
        assert witness is None
        assert certificate.verify(sigma)
        clone = TerminationCertificate.from_dict(
            json.loads(json.dumps(certificate.as_dict()))
        )
        assert clone == certificate
        assert clone.verify(sigma)

    def test_tampered_certificate_fails_verification(self):
        sigma = parse_dependencies("p(X, Y) -> q(Y, Z)")  # q[1] has rank 1
        certificate, _ = certify(sigma)
        payload = certificate.as_dict()
        payload["ranks"] = [[pred, index, 0] for pred, index, _ in payload["ranks"]]
        tampered = TerminationCertificate.from_dict(payload)
        # Flattening every rank to 0 breaks the special-edge inequality.
        assert not tampered.verify(sigma)

    def test_certificate_rejects_different_sigma(self):
        certificate, _ = certify(parse_dependencies(ACYCLIC))
        assert not certificate.verify(parse_dependencies("a(X) -> b(X, Z)"))

    def test_witness_verifies_and_round_trips(self):
        sigma = parse_dependencies(CYCLIC)
        certificate, witness = certify(sigma)
        assert certificate is None
        assert witness.verify(sigma)
        clone = CycleWitness.from_dict(json.loads(json.dumps(witness.as_dict())))
        assert clone == witness
        assert clone.verify(sigma)
        assert "⇒" in witness.render()

    def test_broken_witness_fails_verification(self):
        sigma = parse_dependencies(CYCLIC)
        _, witness = certify(sigma)
        assert not CycleWitness(edges=()).verify(sigma)
        # A witness from a different Σ does not exist in this graph.
        _, other = certify(parse_dependencies("s(X, Y) -> s(Y, Z)"))
        assert not other.verify(sigma)

    def test_rank_of_defaults_to_zero_off_graph(self):
        certificate, _ = certify(parse_dependencies(ACYCLIC))
        assert certificate.rank_of(("nonexistent", 0)) == 0

    def test_depth_bound_dominates_observed_rounds(self):
        sigma = parse_dependencies(ACYCLIC)
        certificate, _ = certify(sigma)
        query = parse_query("Q(X) :- p(X, Y)")
        result = sound_chase(query, sigma, Semantics.from_name("set"), 100)
        assert result.step_count + 1 <= certificate.chase_depth_bound(query)

    def test_step_budget_is_at_least_the_depth_bound(self):
        certificate, _ = certify(parse_dependencies(ACYCLIC))
        query = parse_query("Q(X) :- p(X, Y)")
        assert certificate.step_budget_for(query) >= certificate.chase_depth_bound(
            query
        )

    def test_full_tgd_budget_golden(self):
        """Golden pin of the tightened full-tgd budget.

        With no existential variables the chase invents no values, so the
        step budget collapses to the plain depth bound; with no egds the
        value-retirement term of the step bound is dropped as well.
        """
        sigma = parse_dependencies(
            """
            p(X, Y) -> q(X, Y)
            q(X, Y) -> r(X, Y)
            r(X, Y) -> s(X, Y)
            """
        )
        certificate, _ = certify(sigma)
        assert certificate.egd_count == 0
        query = parse_query("Q(X) :- p(X, Y)")
        # 3 values (X, Y, slack), three full tgds: 3·3² steps + 1 = 28.
        assert certificate.chase_step_bound(query) == 27
        assert certificate.chase_depth_bound(query) == 28
        assert certificate.step_budget_for(query) == 28

    def test_legacy_payload_keeps_conservative_bounds(self):
        """Payloads predating egd_count verify and stay looser, never tighter."""
        sigma = parse_dependencies("p(X, Y) -> q(X, Y)")
        certificate, _ = certify(sigma)
        payload = certificate.as_dict()
        payload.pop("egd_count")
        legacy = TerminationCertificate.from_dict(payload)
        assert legacy.egd_count == -1
        assert legacy.verify(sigma)
        query = parse_query("Q(X) :- p(X, Y)")
        assert legacy.step_budget_for(query) >= certificate.step_budget_for(query)

    def test_egd_count_mismatch_fails_verification(self):
        sigma = parse_dependencies("p(X, Y) -> q(X, Y)")
        certificate, _ = certify(sigma)
        payload = certificate.as_dict()
        payload["egd_count"] = 5
        assert not TerminationCertificate.from_dict(payload).verify(sigma)

    def test_report_json_round_trip(self):
        for text in (ACYCLIC, CYCLIC):
            report = analyze(parse_dependencies(text))
            payload = json.loads(json.dumps(report.as_dict(), sort_keys=True))
            clone = AnalysisReport.from_dict(payload)
            assert clone == report
            assert clone.as_dict() == report.as_dict()


# --------------------------------------------------------------------------- #
# Session precheck
# --------------------------------------------------------------------------- #
class TestSessionPrecheck:
    def test_strict_refuses_cyclic_sigma_before_any_chase(self):
        with pytest.raises(PrecheckFailedError) as info:
            Session(dependencies=parse_dependencies(CYCLIC), precheck="strict")
        assert "⇒" in str(info.value)  # the rendered witness, not a timeout
        assert info.value.report is not None
        assert not info.value.report.ok

    def test_warn_mode_keeps_the_report(self):
        session = Session(
            dependencies=parse_dependencies(CYCLIC), precheck="warn"
        )
        assert session.precheck_report is not None
        assert not session.precheck_report.ok
        assert session.certificate is None

    def test_off_mode_skips_analysis(self):
        session = Session(dependencies=parse_dependencies(CYCLIC))
        assert session.precheck == "off"
        assert session.precheck_report is None

    def test_invalid_mode_is_rejected(self):
        from repro.exceptions import DependencyError

        with pytest.raises(DependencyError):
            Session(dependencies=[], precheck="paranoid")

    def test_strict_set_dependencies_keeps_previous_sigma(self):
        session = Session(
            dependencies=parse_dependencies(ACYCLIC), precheck="strict"
        )
        before = session.dependencies
        with pytest.raises(PrecheckFailedError):
            session.set_dependencies(parse_dependencies(CYCLIC))
        assert session.dependencies is before

    def test_certificate_seeds_chase_budgets(self):
        sigma = parse_dependencies(ACYCLIC)
        query = parse_query("Q(X) :- p(X, Y)")
        # A one-step manual budget exhausts on this two-step chain...
        with pytest.raises(ChaseNonTerminationError):
            Session(dependencies=sigma, max_steps=1).chase(query)
        # ...but the certified session ignores the default budget in favour
        # of the certificate-derived one and terminates.
        certified = Session(dependencies=sigma, precheck="strict", max_steps=1)
        result = certified.chase(query)
        assert result.terminated
        # An explicit per-call budget still wins.
        with pytest.raises(ChaseNonTerminationError):
            certified.chase(query, max_steps=1)

    def test_stats_expose_precheck_section(self):
        session = Session(
            dependencies=parse_dependencies(ACYCLIC), precheck="strict"
        )
        stats = session.stats()
        assert stats["precheck"]["mode"] == "strict"
        assert stats["precheck"]["certified"] is True
        assert stats["precheck"]["errors"] == 0
        plain = Session(dependencies=parse_dependencies(ACYCLIC))
        assert "precheck" not in plain.stats()


# --------------------------------------------------------------------------- #
# repro check CLI
# --------------------------------------------------------------------------- #
class TestCheckCommand:
    def test_json_round_trips_the_report(self, capsys):
        code = main(["check", "--dependencies", ACYCLIC, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        clone = AnalysisReport.from_dict(payload)
        assert clone == analyze(parse_dependencies(ACYCLIC))
        assert code == clone.exit_code() == 0

    def test_exit_code_two_on_cyclic_sigma(self, capsys):
        code = main(["check", "--dependencies", CYCLIC, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["witness"] is not None

    def test_exit_code_one_on_warnings(self, capsys):
        code = main(["check", "--dependencies", "p(X) -> q(Z)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "rule-not-range-restricted" in out

    def test_table_format_renders_summary(self, capsys):
        code = main(["check", "--dependencies", ACYCLIC])
        out = capsys.readouterr().out
        assert code == 0
        assert "sigma-certified" in out
        assert "Σ certified" in out

    def test_queries_and_instance_feed_the_passes(self, capsys, tmp_path):
        instance_file = tmp_path / "instance.json"
        instance_file.write_text(json.dumps({"p": [[1, 2, 3]]}))
        code = main(
            [
                "check",
                "--dependencies",
                ACYCLIC,
                "--query",
                "Q(X) :- p(X, X), s(Y, Y)",
                "--instance",
                str(instance_file),
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "query-cross-product" in codes
        assert "arity-conflict" in codes  # p is binary in Σ, ternary in data
        assert code == 2

    @pytest.mark.parametrize(
        "path",
        list(iter_corpus_paths(CORPUS_DIR)),
        ids=[path.stem for path in iter_corpus_paths(CORPUS_DIR)],
    )
    def test_corpus_replays_through_check(self, capsys, path):
        """Every committed corpus case round-trips through ``repro check``."""
        case = load_corpus_file(path).case
        text = "\n".join(render_dependency(d) for d in case.dependencies)
        code = main(["check", "--dependencies", text, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        report = AnalysisReport.from_dict(payload)
        assert code == report.exit_code()
        assert report.certified == is_weakly_acyclic(case.dependencies)


# --------------------------------------------------------------------------- #
# 500-case property: the static bound dominates observed chase rounds
# --------------------------------------------------------------------------- #
def test_depth_bound_dominates_fuzz_corpus():
    total = 0
    block = 0
    set_semantics = Semantics.from_name("set")
    while total < 500:
        cases = generate_block(0, block, stop=500)
        block += 1
        if not cases:
            continue
        sigma = list(cases[0].dependencies)
        report = analyze(sigma, subsumption=False)
        assert report.certified == is_weakly_acyclic(sigma)
        if report.certified:
            assert report.certificate.verify(sigma)
        else:
            assert report.witness.verify(sigma)
        for case in cases:
            total += 1
            if not report.certified:
                continue
            for query in (case.query, case.other):
                try:
                    result = sound_chase(
                        query, case.dependencies, set_semantics, case.max_steps
                    )
                except (ChaseNonTerminationError, ChaseFailedError):
                    continue
                bound = report.certificate.chase_depth_bound(query)
                assert result.step_count + 1 <= bound, (
                    f"{case.origin}: {result.step_count + 1} rounds "
                    f"exceed static bound {bound}"
                )
    assert total >= 500
