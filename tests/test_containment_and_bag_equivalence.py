"""Tests for the dependency-free containment / equivalence tests.

Covers the Chandra–Merlin set tests, the Chaudhuri–Vardi bag / bag-set tests
(Theorem 2.1), the Theorem 4.2 extension with set-enforced relations, and
classical query minimization.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.bag_equivalence import (
    is_bag_equivalent,
    is_bag_equivalent_with_set_enforced,
    is_bag_set_equivalent,
    violates_bag_containment_count_condition,
)
from repro.core.containment import containment_witness, is_set_contained, is_set_equivalent
from repro.core.minimization import core_endomorphisms, is_minimal, minimize
from repro.core.query import cq
from repro.datalog import parse_query


class TestSetContainment:
    def test_adding_subgoals_shrinks_answers(self):
        q_small = parse_query("Q(X) :- p(X,Y)")
        q_large = parse_query("Q(X) :- p(X,Y), r(Y)")
        assert is_set_contained(q_large, q_small)
        assert not is_set_contained(q_small, q_large)

    def test_self_containment(self):
        q = parse_query("Q(X) :- p(X,Y), p(Y,X)")
        assert is_set_contained(q, q)
        assert is_set_equivalent(q, q)

    def test_classic_equivalence_with_redundant_subgoal(self):
        q1 = parse_query("Q(X) :- p(X,Y)")
        q2 = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        assert is_set_equivalent(q1, q2)

    def test_constants_block_containment(self):
        q1 = parse_query("Q(X) :- p(X,1)")
        q2 = parse_query("Q(X) :- p(X,Y)")
        assert is_set_contained(q1, q2)
        assert not is_set_contained(q2, q1)

    def test_containment_witness(self):
        q1 = parse_query("Q(X) :- p(X,Y), r(Y)")
        q2 = parse_query("Q(X) :- p(X,Y)")
        assert containment_witness(q1, q2) is not None
        assert containment_witness(q2, q1) is None

    def test_example_4_1_hierarchy(self, ex41):
        # Proposition 6.2 ordering in the absence of dependencies:
        # Q1 (most subgoals) is set-contained in Q2, Q2 in Q3, Q3 in Q4.
        assert is_set_contained(ex41.q1, ex41.q2)
        assert is_set_contained(ex41.q2, ex41.q3)
        assert is_set_contained(ex41.q3, ex41.q4)
        assert not is_set_equivalent(ex41.q1, ex41.q4)


class TestBagEquivalence:
    def test_isomorphic_queries_are_bag_equivalent(self):
        q1 = parse_query("Q(X) :- p(X,Y), s(Y,Z)")
        q2 = parse_query("Q(A) :- s(B,C), p(A,B)")
        assert is_bag_equivalent(q1, q2)

    def test_redundant_subgoal_breaks_bag_equivalence(self):
        q1 = parse_query("Q(X) :- p(X,Y)")
        q2 = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        assert not is_bag_equivalent(q1, q2)
        assert is_set_equivalent(q1, q2)

    def test_bag_implies_bag_set_implies_set(self):
        # Proposition 2.1 on concrete pairs.
        q1 = parse_query("Q(X) :- p(X,Y), s(X,Z)")
        q2 = parse_query("Q(A) :- s(A,C), p(A,B)")
        assert is_bag_equivalent(q1, q2)
        assert is_bag_set_equivalent(q1, q2)
        assert is_set_equivalent(q1, q2)

    def test_bag_set_equivalence_ignores_duplicate_subgoals(self):
        q1 = parse_query("Q(X) :- p(X,Y)")
        q2 = parse_query("Q(X) :- p(X,Y), p(X,Y)")
        assert is_bag_set_equivalent(q1, q2)
        assert not is_bag_equivalent(q1, q2)

    def test_count_condition_necessary_for_bag_containment(self):
        q1 = parse_query("Q(X) :- p(X,Y), p(Y,Z)")
        q2 = parse_query("Q(X) :- p(X,Y)")
        assert violates_bag_containment_count_condition(q1, q2) == ["p"]
        assert violates_bag_containment_count_condition(q2, q1) == []


class TestTheorem42:
    def test_example_4_9(self, ex41):
        # Q3 and Q5 differ only by a duplicated s-subgoal; with S set valued
        # they are bag equivalent, without the constraint they are not.
        assert not is_bag_equivalent(ex41.q3, ex41.q5)
        assert is_bag_equivalent_with_set_enforced(ex41.q3, ex41.q5, {"s", "t"})

    def test_duplicates_over_non_set_valued_relations_still_matter(self, ex41):
        # Q7 duplicates r(X); R is not set valued, so no equivalence.
        assert not is_bag_equivalent_with_set_enforced(ex41.q7, ex41.q8, {"s", "t"})

    def test_reduces_to_plain_bag_equivalence_without_markers(self):
        q1 = parse_query("Q(X) :- p(X,Y), s(X,Z), s(X,Z)")
        q2 = parse_query("Q(X) :- p(X,Y), s(X,Z)")
        assert not is_bag_equivalent_with_set_enforced(q1, q2, set())
        assert is_bag_equivalent_with_set_enforced(q1, q2, {"s"})


class TestMinimization:
    def test_redundant_subgoal_removed(self):
        query = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        minimal = minimize(query)
        assert len(minimal.body) == 1
        assert is_set_equivalent(minimal, query)

    def test_chain_with_projection_minimizes(self):
        query = parse_query("Q(X) :- p(X,Y), p(X,Y), r(Y)")
        minimal = minimize(query)
        assert len(minimal.body) == 2

    def test_already_minimal_query_untouched(self):
        query = parse_query("Q(X) :- p(X,Y), r(Y)")
        assert minimize(query).body == query.body
        assert is_minimal(query)

    def test_is_minimal_detects_redundancy(self):
        assert not is_minimal(parse_query("Q(X) :- p(X,Y), p(X,Z)"))

    def test_single_atom_query_is_minimal(self):
        assert is_minimal(parse_query("Q(X) :- p(X,Y)"))

    def test_core_endomorphisms_fix_head(self):
        query = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        endos = core_endomorphisms(query)
        assert all(m.get(next(iter(query.head_variables()))) in (None, query.head_terms[0]) or True for m in endos)
        # There is at least the identity-like endomorphism plus a collapsing one.
        assert len(endos) >= 2
