"""The self-contained position graph vs. a networkx reference, plus unit checks.

PR 7 replaced the networkx-backed weak-acyclicity check with an int-keyed
position graph (Tarjan SCC, special-edge cycle search, rank DP) in
``repro.dependencies.position_graph``.  These tests pin the replacement to
Definition H.1 two ways:

* a *reference reimplementation* of the old networkx construction (inlined
  below, skipped when networkx is absent) must agree with the new graph on
  node set, edge multiset, weak-acyclicity verdict, and offending-special-edge
  set across a seeded fuzz corpus of dependency sets;
* hand-built graphs exercise Tarjan, the rank DP, and the witness cycle
  directly, independent of any dependency front end.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.dependencies.base import TGD, DependencySet
from repro.dependencies.position_graph import (
    PositionGraph,
    build_position_graph,
)
from repro.dependencies.weak_acyclicity import (
    dependency_graph,
    is_weakly_acyclic,
    special_edges_on_cycles,
)
from repro.fuzz import generate_dependencies
from repro import parse_dependencies


def _sigma(text: str) -> list:
    return list(parse_dependencies(text))


CYCLIC = _sigma("r(X, Y) -> r(Y, Z)")
ACYCLIC = _sigma(
    """
    r(X, Y) -> s(Y, Z)
    s(X, Y) -> t(X, Y)
    """
)


# ---------------------------------------------------------------------------
# Reference reimplementation of the pre-PR-7 networkx construction.
# ---------------------------------------------------------------------------


def _nx_dependency_graph(dependencies):
    nx = pytest.importorskip("networkx")
    graph = nx.MultiDiGraph()
    from repro.core.terms import Variable

    for dependency in dependencies:
        if not isinstance(dependency, TGD):
            continue
        premise_positions = {}
        for atom in dependency.premise:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    premise_positions.setdefault(term, []).append(
                        (atom.predicate, index)
                    )
        existential = set(dependency.existential_variables())
        conclusion_positions = {}
        for atom in dependency.conclusion:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    conclusion_positions.setdefault(term, []).append(
                        (atom.predicate, index)
                    )
        for variable, sources in premise_positions.items():
            targets = conclusion_positions.get(variable, [])
            if not targets and not existential:
                continue
            for source in sources:
                graph.add_node(source)
                for target in targets:
                    graph.add_node(target)
                    graph.add_edge(source, target, special=False)
                if variable in conclusion_positions:
                    for exist_var in existential:
                        for target in conclusion_positions.get(exist_var, []):
                            graph.add_node(target)
                            graph.add_edge(source, target, special=True)
    return graph


def _nx_verdict_and_witnesses(dependencies):
    nx = pytest.importorskip("networkx")
    graph = _nx_dependency_graph(dependencies)
    component_of = {}
    for component_id, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = component_id
    witnesses = [
        (source, target)
        for source, target, data in graph.edges(data=True)
        if data.get("special") and component_of[source] == component_of[target]
    ]
    return graph, not witnesses, witnesses


def _assert_parity(dependencies):
    nx_graph, nx_acyclic, nx_witnesses = _nx_verdict_and_witnesses(dependencies)
    graph = dependency_graph(dependencies)
    assert set(graph) == set(nx_graph.nodes)
    assert graph.number_of_nodes() == nx_graph.number_of_nodes()
    ours = Counter(
        (graph.positions[e.source], graph.positions[e.target], e.special)
        for e in graph.edges
    )
    theirs = Counter(
        (source, target, bool(data.get("special")))
        for source, target, data in nx_graph.edges(data=True)
    )
    assert ours == theirs
    assert is_weakly_acyclic(dependencies) == nx_acyclic
    assert Counter(special_edges_on_cycles(dependencies)) == Counter(nx_witnesses)


def test_parity_on_hand_built_sets():
    _assert_parity(CYCLIC)
    _assert_parity(ACYCLIC)
    _assert_parity([])
    # Variable in premise only, existential in conclusion: the Definition H.1
    # subtlety — special edges exist only for premise variables that occur in
    # the conclusion.
    _assert_parity(_sigma("r(X, W) -> s(X, Z)"))
    # Parallel edges from repeated positions must survive as a multiset.
    _assert_parity(_sigma("r(X, X) -> s(X, X, Z)"))


@pytest.mark.parametrize("block", range(40))
def test_parity_on_fuzz_corpus(block):
    sigma, _vocab = generate_dependencies(0, block)
    _assert_parity(list(sigma))


def test_parity_accepts_dependency_set_wrapper():
    assert is_weakly_acyclic(DependencySet(CYCLIC)) is False
    assert is_weakly_acyclic(DependencySet(ACYCLIC)) is True


# ---------------------------------------------------------------------------
# Direct unit checks on the graph algorithms.
# ---------------------------------------------------------------------------


_DUMMY = _sigma("dummy(X) -> dummy2(X, Z)")[0]


def _graph(edges, nodes=()):
    graph = PositionGraph()
    for node in nodes:
        graph.add_node(node)
    for source, target, special in edges:
        graph.add_edge(
            source,
            target,
            special=special,
            dependency=_DUMMY,
            variable=next(iter(_DUMMY.frontier_variables())),
        )
    return graph


def _position_ranks(graph):
    ranks = graph.ranks()
    if ranks is None:
        return None
    return {graph.positions[node]: rank for node, rank in enumerate(ranks)}


def test_tarjan_components_on_dag():
    graph = _graph([(("a", 0), ("b", 0), False), (("b", 0), ("c", 0), False)])
    component = graph.component_of()
    assert graph.number_of_components() == 3
    assert len({component[i] for i in range(3)}) == 3
    # Tarjan emits SCCs in reverse topological order: successors first.
    assert component[graph.node_id(("c", 0))] < component[graph.node_id(("a", 0))]


def test_tarjan_components_on_cycle():
    graph = _graph(
        [
            (("a", 0), ("b", 0), False),
            (("b", 0), ("a", 0), False),
            (("b", 0), ("c", 0), False),
        ]
    )
    component = graph.component_of()
    assert component[graph.node_id(("a", 0))] == component[graph.node_id(("b", 0))]
    assert component[graph.node_id(("c", 0))] != component[graph.node_id(("a", 0))]
    assert graph.number_of_components() == 2


def test_isolated_nodes_are_their_own_components():
    graph = _graph([], nodes=[("a", 0), ("b", 1)])
    assert graph.number_of_components() == 2
    assert graph.is_weakly_acyclic()
    assert _position_ranks(graph) == {("a", 0): 0, ("b", 1): 0}


def test_special_self_loop_is_cyclic_with_singleton_witness():
    graph = _graph([(("r", 1), ("r", 1), True)])
    assert not graph.is_weakly_acyclic()
    assert graph.ranks() is None
    witness = graph.witness_cycle()
    assert witness is not None
    assert len(witness) == 1 and witness[0].special


def test_witness_cycle_is_a_closed_walk_through_a_special_edge():
    graph = _graph(
        [
            (("r", 0), ("r", 1), True),
            (("r", 1), ("s", 0), False),
            (("s", 0), ("r", 0), False),
        ]
    )
    witness = graph.witness_cycle()
    assert witness is not None
    assert any(edge.special for edge in witness)
    for edge, following in zip(witness, witness[1:] + witness[:1]):
        assert edge.target == following.source


def test_ordinary_cycle_has_ranks_and_no_witness():
    graph = _graph(
        [
            (("r", 0), ("r", 1), False),
            (("r", 1), ("r", 0), False),
            (("r", 1), ("s", 0), True),
        ]
    )
    assert graph.is_weakly_acyclic()
    assert graph.witness_cycle() is None
    assert _position_ranks(graph) == {("r", 0): 0, ("r", 1): 0, ("s", 0): 1}


def test_ranks_count_special_edges_on_longest_path():
    graph = _graph(
        [
            (("a", 0), ("b", 0), True),
            (("b", 0), ("c", 0), False),
            (("c", 0), ("d", 0), True),
            (("a", 0), ("d", 0), True),
        ]
    )
    ranks = _position_ranks(graph)
    assert ranks == {("a", 0): 0, ("b", 0): 1, ("c", 0): 1, ("d", 0): 2}
    # Every edge satisfies the local rank condition — the certificate check.
    for edge in graph.edges:
        weight = 1 if edge.special else 0
        assert ranks[graph.positions[edge.target]] >= (
            ranks[graph.positions[edge.source]] + weight
        )


def test_build_position_graph_matches_dependency_graph():
    for sigma in (CYCLIC, ACYCLIC):
        first = build_position_graph(sigma)
        second = dependency_graph(sigma)
        assert set(first) == set(second)
        assert Counter(
            (first.positions[e.source], first.positions[e.target], e.special)
            for e in first.edges
        ) == Counter(
            (second.positions[e.source], second.positions[e.target], e.special)
            for e in second.edges
        )
