"""Package-level tests: public API surface, exception hierarchy, semantics enum."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    ChaseError,
    ChaseNonTerminationError,
    DependencyError,
    EvaluationError,
    ParseError,
    QueryError,
    ReformulationError,
    ReproError,
    SchemaError,
    TranslationError,
)
from repro.semantics import Semantics


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} is exported but missing"

    def test_key_entry_points_present(self):
        for name in (
            "parse_query",
            "parse_dependencies",
            "decide_equivalence",
            "sound_chase",
            "bag_c_and_b",
            "schema_from_ddl",
            "translate_sql",
            "rewrite_query_using_views",
            "find_counterexample",
        ):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.chase
        import repro.core
        import repro.database
        import repro.datalog
        import repro.dependencies
        import repro.equivalence
        import repro.evaluation
        import repro.paperlib
        import repro.reformulation
        import repro.schema
        import repro.sql
        import repro.views
        import repro.witnesses

        assert repro.analysis and repro.witnesses


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            QueryError,
            SchemaError,
            DependencyError,
            ChaseError,
            ChaseNonTerminationError,
            ParseError,
            TranslationError,
            EvaluationError,
            ReformulationError,
        ):
            assert issubclass(error_type, ReproError)

    def test_non_termination_error_carries_step_count(self):
        error = ChaseNonTerminationError("budget exhausted", steps_taken=42)
        assert error.steps_taken == 42
        assert isinstance(error, ChaseError)

    def test_parse_error_position(self):
        error = ParseError("bad token", position=7)
        assert error.position == 7

    def test_single_except_clause_catches_everything(self):
        from repro import parse_query

        with pytest.raises(ReproError):
            parse_query("garbage ::::")


class TestSemanticsEnum:
    def test_string_rendering(self):
        assert str(Semantics.BAG) == "bag"
        assert str(Semantics.BAG_SET) == "bag-set"
        assert str(Semantics.SET) == "set"

    def test_round_trip_through_names(self):
        for semantics in Semantics:
            assert Semantics.from_name(str(semantics)) is semantics

    def test_alias_spellings(self):
        assert Semantics.from_name("BS") is Semantics.BAG_SET
        assert Semantics.from_name("bag_set") is Semantics.BAG_SET
        assert Semantics.from_name("B") is Semantics.BAG
        assert Semantics.from_name("s") is Semantics.SET
