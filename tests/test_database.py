"""Tests for the bag-valued database substrate: relations, instances,
canonical databases, dependency satisfaction, and generators."""

from __future__ import annotations

import pytest

from repro.core.terms import Variable
from repro.database import (
    DatabaseInstance,
    Relation,
    canonical_database,
    chained_instance,
    random_instance,
    random_key_respecting_instance,
    satisfies,
    satisfies_all,
    satisfies_set_valuedness,
    violated_dependencies,
)
from repro.datalog import parse_dependencies, parse_egd, parse_query, parse_tgd
from repro.exceptions import SchemaError
from repro.schema import DatabaseSchema


class TestRelation:
    def test_add_and_multiplicity(self):
        relation = Relation("p", 2, [(1, 2), (1, 2), (3, 4)])
        assert relation.multiplicity((1, 2)) == 2
        assert relation.multiplicity((3, 4)) == 1
        assert relation.multiplicity((9, 9)) == 0
        assert relation.cardinality == 3
        assert relation.core_set() == {(1, 2), (3, 4)}

    def test_arity_checked(self):
        relation = Relation("p", 2)
        with pytest.raises(SchemaError):
            relation.add((1, 2, 3))

    def test_multiplicity_must_be_positive(self):
        with pytest.raises(SchemaError):
            Relation("p", 1).add((1,), 0)

    def test_set_valuedness_and_distinct(self):
        bag = Relation("p", 1, [(1,), (1,)])
        assert not bag.is_set_valued()
        assert bag.distinct().is_set_valued()
        assert bag.distinct().cardinality == 1

    def test_scaled(self):
        relation = Relation("p", 1, [(1,)])
        assert relation.scaled(5).multiplicity((1,)) == 5
        with pytest.raises(SchemaError):
            relation.scaled(0)

    def test_iteration_and_membership(self):
        relation = Relation("p", 1, [(1,), (1,), (2,)])
        assert sorted(relation) == [(1,), (2,)]
        assert (1,) in relation and (5,) not in relation
        assert dict(relation.iter_with_multiplicity()) == {(1,): 2, (2,): 1}


class TestDatabaseInstance:
    def test_from_dict_counts_duplicates(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2), (1, 2)]})
        assert instance.relation("p").multiplicity((1, 2)) == 2

    def test_from_dict_with_schema_creates_empty_relations(self):
        schema = DatabaseSchema.from_arities({"p": 2, "r": 1})
        instance = DatabaseInstance.from_dict({"p": [(1, 2)]}, schema)
        assert instance.has_relation("r")
        assert instance.relation("r").cardinality == 0

    def test_empty_relation_without_schema_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseInstance.from_dict({"p": []})

    def test_missing_relation_raises(self):
        with pytest.raises(SchemaError):
            DatabaseInstance().relation("p")

    def test_is_set_valued_with_subset(self):
        instance = DatabaseInstance.from_dict({"p": [(1,), (1,)], "r": [(2,)]})
        assert not instance.is_set_valued()
        assert instance.is_set_valued(["r"])
        assert satisfies_set_valuedness(instance, ["r"])
        assert not satisfies_set_valuedness(instance, ["p"])

    def test_distinct_and_copy_are_independent(self):
        instance = DatabaseInstance.from_dict({"p": [(1,), (1,)]})
        deduplicated = instance.distinct()
        copy = instance.copy()
        copy.add_tuple("p", (9,))
        assert deduplicated.relation("p").cardinality == 1
        assert instance.relation("p").cardinality == 2
        assert copy.relation("p").cardinality == 3

    def test_ground_atoms(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2)], "r": [(3,)]})
        atoms = {str(a) for a in instance.ground_atoms()}
        assert atoms == {"p(1, 2)", "r(3)"}

    def test_equality_ignores_empty_relations(self):
        schema = DatabaseSchema.from_arities({"p": 2, "r": 1})
        with_empty = DatabaseInstance.from_dict({"p": [(1, 2)]}, schema)
        without = DatabaseInstance.from_dict({"p": [(1, 2)]})
        assert with_empty == without

    def test_total_tuples(self):
        instance = DatabaseInstance.from_dict({"p": [(1,), (1,)], "r": [(2,)]})
        assert instance.total_tuples() == 3


class TestCanonicalDatabase:
    def test_variables_frozen_to_distinct_constants(self):
        query = parse_query("Q(X) :- p(X,Y), s(Y,Z)")
        canonical = canonical_database(query)
        frozen = {canonical.constant_for(v) for v in query.all_variables()}
        assert len(frozen) == 3
        assert canonical.instance.relation("p").cardinality == 1

    def test_constants_kept(self):
        query = parse_query("Q(X) :- p(X,1)")
        canonical = canonical_database(query)
        (row,) = list(canonical.instance.relation("p"))
        assert row[1] == 1

    def test_duplicate_subgoals_collapse(self):
        query = parse_query("Q(X) :- p(X,Y), p(X,Y)")
        canonical = canonical_database(query)
        assert canonical.instance.relation("p").cardinality == 1

    def test_head_tuple(self):
        query = parse_query("Q(X, 7) :- p(X,Y)")
        canonical = canonical_database(query)
        head = canonical.head_tuple()
        assert head[0] == canonical.constant_for("X") and head[1] == 7

    def test_canonical_database_is_set_valued(self):
        query = parse_query("Q(X) :- p(X,Y), p(Y,X), r(X)")
        assert canonical_database(query).instance.is_set_valued()

    def test_fresh_constants_avoid_query_constants(self):
        query = parse_query("Q(X) :- p(X, '@X')")
        canonical = canonical_database(query)
        assert canonical.constant_for("X") != "@X"


class TestSatisfaction:
    def test_tgd_satisfaction(self):
        tgd = parse_tgd("p(X,Y) -> r(Y)")
        good = DatabaseInstance.from_dict({"p": [(1, 2)], "r": [(2,)]})
        bad = DatabaseInstance.from_dict({"p": [(1, 2)], "r": [(1,)]})
        assert satisfies(good, tgd)
        assert not satisfies(bad, tgd)

    def test_tgd_with_existential(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        good = DatabaseInstance.from_dict({"p": [(1, 2)], "s": [(1, 99)]})
        bad = DatabaseInstance.from_dict({"p": [(1, 2)], "s": [(2, 99)]})
        assert satisfies(good, tgd)
        assert not satisfies(bad, tgd)

    def test_egd_satisfaction(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        good = DatabaseInstance.from_dict({"s": [(1, 2), (3, 4)]})
        bad = DatabaseInstance.from_dict({"s": [(1, 2), (1, 3)]})
        assert satisfies(good, egd)
        assert not satisfies(bad, egd)

    def test_satisfies_all_with_set_valued_markers(self, ex41):
        assert satisfies_all(ex41.counterexample, ex41.dependencies)
        # The D.1 database duplicates an S tuple, so the set-valuedness of S fails.
        assert not satisfies_all(ex41.counterexample_d1, ex41.dependencies)
        assert satisfies_all(
            ex41.counterexample_d1, ex41.dependencies, check_set_valuedness=False
        ) is False  # it also violates sigma3 (no r-tuple)

    def test_violated_dependencies(self):
        sigma = parse_dependencies("""
            p(X,Y) -> r(Y)
            s(X,Y) & s(X,Z) -> Y = Z
        """)
        instance = DatabaseInstance.from_dict({"p": [(1, 2)], "s": [(1, 2), (1, 3)], "r": [(2,)]})
        violated = violated_dependencies(instance, sigma)
        assert len(violated) == 1

    def test_example_4_7_counterexample_violates_sigma5(self, ex43):
        # The paper's Example 4.7 counterexample database does not satisfy its
        # own dependency σ5 — documented deviation (see EXPERIMENTS.md).
        sigma5 = next(d for d in ex43.dependencies_47 if d.name == "sigma5")
        assert not satisfies(ex43.counterexample_47, sigma5)


class TestGenerators:
    schema = DatabaseSchema.from_arities({"p": 2, "r": 1})

    def test_random_instance_is_reproducible(self):
        first = random_instance(self.schema, 20, seed=7)
        second = random_instance(self.schema, 20, seed=7)
        assert first == second

    def test_random_instance_duplicates(self):
        instance = random_instance(self.schema, 50, domain_size=5, duplicate_fraction=0.5, seed=1)
        assert not instance.is_set_valued()
        clean = random_instance(self.schema, 20, domain_size=1000, duplicate_fraction=0.0, seed=1)
        assert clean.is_set_valued()

    def test_key_respecting_instance(self):
        instance = random_key_respecting_instance(
            self.schema, {"p": [0]}, tuples_per_relation=30, domain_size=100, seed=3
        )
        keys = [row[0] for row in instance.relation("p")]
        assert len(keys) == len(set(keys))

    def test_chained_instance_respects_inclusions(self):
        instance = chained_instance(["r1", "r2"], 2, chain_length=5, fanout=2, seed=0)
        keys_r1 = {row[0] for row in instance.relation("r1")}
        keys_r2 = {row[0] for row in instance.relation("r2")}
        assert keys_r1 <= keys_r2
        assert instance.relation("r1").cardinality >= 5
