"""Interning / hash-consing invariants of the core representation.

The interned core (``repro.core.terms`` / ``atoms`` / ``query``) promises:

* equality ⇔ identity for interned terms within one process;
* hashes identical to the frozen-dataclass representation it replaced,
  computed once and cached;
* pickling re-interns, so terms survive the ``decide_many`` multiprocessing
  round trip as canonical singletons;
* derived forms (structural key, canonical representation, dedup) are
  computed once per query object — asserted here through the new profile
  counters — and chase-cache keys are built once per query object per
  (strategy, budget) and reused;
* the refactor is behaviour-preserving, pinned by a seeded 300-case
  differential fuzz campaign against the frozen reference engines.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.atoms import Atom, EqualityAtom, signature_id
from repro.core.query import CANONICALIZATION_STATS, cq
from repro.core.terms import (
    INTERN_STATS,
    Constant,
    Variable,
    intern_table_sizes,
    term_from_value,
)
from repro.fuzz.runner import run_campaign
from repro.paperlib.examples import example_4_1
from repro.session import Session


class TestTermInterning:
    def test_equality_is_identity_for_variables(self):
        assert Variable("X") is Variable("X")
        assert Variable("X") == Variable("X")
        assert Variable("X") is not Variable("Y")

    def test_equality_is_identity_for_constants(self):
        assert Constant(1) is Constant(1)
        assert Constant("a") is Constant("a")
        assert Constant(1) is not Constant("1")

    def test_terms_coerced_through_atoms_are_interned(self):
        atom = Atom("p", ["X", "a", 3])
        assert atom.terms[0] is Variable("X")
        assert atom.terms[1] is Constant("a")
        assert atom.terms[2] is Constant(3)

    def test_term_from_value_returns_singletons(self):
        assert term_from_value("X") is Variable("X")
        assert term_from_value("abc") is Constant("abc")

    def test_hash_is_stable_and_cached(self):
        var = Variable("X_hash_stability")
        assert hash(var) == hash(var) == hash(Variable("X_hash_stability"))
        const = Constant("c_hash_stability")
        assert hash(const) == hash(Constant("c_hash_stability"))

    def test_uids_are_distinct_and_stable(self):
        a, b = Variable("UidA"), Constant("uid_b")
        assert a.uid != b.uid
        assert Variable("UidA").uid == a.uid

    def test_variables_and_constants_never_compare_equal(self):
        assert Variable("X") != Constant("X")
        assert Constant("X") != Variable("X")

    def test_terms_are_immutable(self):
        with pytest.raises(AttributeError):
            Variable("X").name = "Y"
        with pytest.raises(AttributeError):
            Constant(1).value = 2

    def test_intern_stats_count_hits_and_misses(self):
        before = INTERN_STATS.snapshot()
        # Hold the first construction: the weak tables drop an interned term
        # as soon as its last strong reference dies, so an unreferenced
        # first construction would make the second a miss again.
        keep = Variable("BrandNewInternStatVariable")
        again = Variable("BrandNewInternStatVariable")
        assert again is keep
        hits, misses = INTERN_STATS.snapshot()
        assert misses - before[1] == 1
        assert hits - before[0] == 1

    def test_intern_table_sizes_reports_both_tables(self):
        variables_before, constants_before = intern_table_sizes()
        keep_variable = Variable("BrandNewTableSizeVariable")
        keep_constant = Constant("brand-new-table-size-constant")
        variables_after, constants_after = intern_table_sizes()
        assert variables_after == variables_before + 1
        assert constants_after == constants_before + 1
        del keep_variable, keep_constant


class TestAtomPrecomputation:
    def test_signature_and_sig_id(self):
        atom = Atom("p", ["X", "Y"])
        assert atom.signature == ("p", 2)
        assert atom.sig_id == signature_id("p", 2)
        assert Atom("p", ["A", "B"]).sig_id == atom.sig_id
        assert Atom("p", ["A"]).sig_id != atom.sig_id  # arity distinguishes

    def test_term_ids_match_terms(self):
        atom = Atom("p", ["X", 1])
        assert atom.term_ids == (Variable("X").uid, Constant(1).uid)

    def test_atoms_are_immutable(self):
        with pytest.raises(AttributeError):
            Atom("p", ["X"]).predicate = "q"
        with pytest.raises(AttributeError):
            EqualityAtom("X", "Y").left = Variable("Z")

    def test_atom_hash_matches_value_equality(self):
        assert hash(Atom("p", ["X", 1])) == hash(Atom("p", ["X", 1]))
        assert Atom("p", ["X", 1]) == Atom("p", ["X", 1])


class TestQueryMemoization:
    def test_structural_key_is_computed_once_per_object(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        before = CANONICALIZATION_STATS.snapshot()
        first = query.structural_key()
        second = query.structural_key()
        hits, misses = CANONICALIZATION_STATS.snapshot()
        assert first is second  # the very same tuple object
        assert misses - before[1] == 1
        assert hits - before[0] == 1

    def test_alpha_variants_share_structural_keys(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["A"], Atom("p", ["A", "B"]))
        assert q1.structural_key() == q2.structural_key()

    def test_canonical_representation_memoized_and_identity_when_duplicate_free(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        assert query.canonical_representation() is query
        duplicated = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["X", "Y"]))
        canonical = duplicated.canonical_representation()
        assert canonical is duplicated.canonical_representation()
        assert len(canonical.body) == 1

    def test_drop_duplicates_memoized_per_predicate_set(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["X", "Y"]))
        reduced = query.drop_duplicates_for({"p"})
        assert reduced is query.drop_duplicates_for(frozenset({"p"}))
        assert query.drop_duplicates_for({"r"}) is query  # nothing droppable

    def test_queries_are_immutable(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        with pytest.raises(AttributeError):
            query.head_predicate = "R"

    def test_normal_form_is_idempotent_and_memoized(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        nf = query.normal_form()
        assert nf.normal_form() is nf
        assert query.normal_form() is nf


class TestPickleRoundTrip:
    def test_terms_reintern_on_unpickle(self):
        for term in (Variable("PickleVar"), Constant("pickle-const"), Constant(17)):
            clone = pickle.loads(pickle.dumps(term))
            assert clone is term

    def test_atoms_and_queries_roundtrip_with_interned_terms(self):
        query = cq("Q", ["X", 1], Atom("p", ["X", "Y"]), Atom("r", ["Y", "abc"]))
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
        for original, copied in zip(query.body, clone.body):
            for term_a, term_b in zip(original.terms, copied.terms):
                assert term_a is term_b

    def test_equality_atom_roundtrip(self):
        eq = EqualityAtom("X", 3)
        clone = pickle.loads(pickle.dumps(eq))
        assert clone == eq
        assert clone.left is eq.left and clone.right is eq.right


class TestSessionKeyReuse:
    """Satellite: chase-cache keys are built once per query object and reused."""

    def test_warm_decides_reuse_cache_keys(self):
        ex41 = example_4_1()
        session = Session(dependencies=ex41.dependencies)
        session.decide(ex41.q1, ex41.q4, "bag")
        built_after_cold = session.chase_profile().cache_keys_built
        assert built_after_cold == 2  # one key per distinct query object
        session.decide(ex41.q1, ex41.q4, "bag")
        profile = session.chase_profile()
        assert profile.cache_keys_built == built_after_cold  # nothing rebuilt
        assert profile.cache_keys_reused >= 2

    def test_structural_keys_not_recomputed_on_warm_decides(self):
        ex41 = example_4_1()
        session = Session(dependencies=ex41.dependencies)
        session.decide(ex41.q1, ex41.q4, "bag")
        before = CANONICALIZATION_STATS.snapshot()
        for _ in range(5):
            session.decide(ex41.q1, ex41.q4, "bag")
        hits, misses = CANONICALIZATION_STATS.snapshot()
        # Warm decides reuse the memoized ChaseKey: not even a structural-key
        # *hit* is recorded, and certainly nothing is recomputed.
        assert misses == before[1]

    def test_changing_sigma_resets_key_memo(self):
        ex41 = example_4_1()
        session = Session(dependencies=ex41.dependencies)
        session.decide(ex41.q1, ex41.q4, "bag")
        built = session.chase_profile().cache_keys_built
        session.set_dependencies(ex41.dependencies)
        session.decide(ex41.q1, ex41.q4, "bag")
        assert session.chase_profile().cache_keys_built == built + 2


class TestMultiprocessingRoundTrip:
    """Satellite: pickle/unpickle re-interns across a decide_many --jobs 2 run."""

    def test_decide_many_with_two_jobs_matches_serial(self):
        ex41 = example_4_1()
        pairs = [(ex41.q1, ex41.q4), (ex41.q3, ex41.q4), (ex41.q1, ex41.q2)]
        session = Session(dependencies=ex41.dependencies)
        serial = session.decide_many(pairs, semantics="bag")
        parallel = Session(dependencies=ex41.dependencies).decide_many(
            pairs, semantics="bag", concurrency=2
        )
        assert [bool(item.result) for item in serial] == [
            bool(item.result) for item in parallel
        ]
        # Verdict queries crossed two process boundaries; their terms must be
        # the parent process's canonical singletons again.
        for item in parallel:
            for chased in (item.result.chased_left, item.result.chased_right):
                for atom in chased.body:
                    for term in atom.terms:
                        assert term_from_value(term) is term
                        if isinstance(term, Variable):
                            assert Variable(term.name) is term
                        else:
                            assert Constant(term.value) is term


class TestReviewRegressions:
    def test_ground_atoms_pass_existing_constants_through(self):
        from repro.database.instance import DatabaseInstance

        instance = DatabaseInstance.from_dict({"p": [(Constant(1), 2)]})
        (atom,) = instance.ground_atoms()
        assert atom.terms == (Constant(1), Constant(2))  # no double wrapping

    def test_fingerprint_detects_direct_list_mutation(self):
        from repro.dependencies.base import DependencySet

        source = example_4_1().dependencies
        mutable = DependencySet(list(source.dependencies))
        first = mutable.fingerprint
        assert mutable.fingerprint is first  # warm access returns the memo
        mutable.dependencies.append(mutable.dependencies[0])  # bypasses add()
        assert mutable.fingerprint != first
        # Same-length, in-place element replacement must be observed too.
        shuffled = DependencySet(list(source.dependencies))
        before = shuffled.fingerprint
        shuffled.dependencies[0], shuffled.dependencies[-1] = (
            shuffled.dependencies[-1],
            shuffled.dependencies[0],
        )
        assert shuffled.fingerprint != before  # order matters for the chase
        # Reassigning the set-valued markers must be observed too.
        remarked = DependencySet(list(source.dependencies))
        unmarked = remarked.fingerprint
        remarked.set_valued_predicates = frozenset({"brand_new_marker"})
        assert remarked.fingerprint != unmarked


class TestDifferentialPin:
    """Satellite: 300 seeded cases comparing new core vs frozen references."""

    def test_seeded_300_case_campaign_is_clean(self):
        result = run_campaign(0, 300)
        assert result.ok, [failure.summary() for failure in result.failures]
        assert result.cases == 300


class TestWeakInterning:
    """The intern tables are weak: live terms are canonical, dead ones pruned.

    Satellite of the uid-kernel PR (ROADMAP: intern-table pruning): a
    long-lived server on an unbounded constant vocabulary must not grow the
    tables without bound, while the equality-falls-back-to-value guarantee
    and the equality ⇒ identity fast path stay intact for live terms.
    """

    def test_tables_prune_dead_terms(self):
        import gc

        variables_before, constants_before = intern_table_sizes()
        held = [Variable(f"WeakIntern{i}") for i in range(50)]
        held += [Constant(f"weak-intern-{i}") for i in range(50)]
        variables_live, constants_live = intern_table_sizes()
        assert variables_live >= variables_before + 50
        assert constants_live >= constants_before + 50
        del held
        gc.collect()
        variables_after, constants_after = intern_table_sizes()
        assert variables_after <= variables_live - 50
        assert constants_after <= constants_live - 50

    def test_live_terms_stay_canonical_singletons(self):
        keep = Variable("WeakInternCanonical")
        assert Variable("WeakInternCanonical") is keep
        keep_constant = Constant("weak-intern-canonical")
        assert Constant("weak-intern-canonical") is keep_constant

    def test_reinterned_name_gets_fresh_uid_but_same_hash_and_equality(self):
        import gc

        first = Variable("WeakInternReborn")
        first_uid, first_hash = first.uid, hash(first)
        del first
        gc.collect()
        reborn = Variable("WeakInternReborn")
        # A new singleton: uid is fresh (uids are never reused), but the
        # value-based hash and equality semantics are unchanged.
        assert reborn.uid != first_uid
        assert hash(reborn) == first_hash
        assert reborn == Variable("WeakInternReborn")

    def test_uid_keyed_structures_keep_their_terms_alive(self):
        """A uid embedded in an index implies its term is strongly held."""
        import gc

        from repro.core.homomorphism import TargetIndex
        from repro.core.plan import MatchPlan

        atoms = [Atom("weak_intern_p", [Variable("WeakInternHeld"), Constant("weak-held")])]
        plan = MatchPlan(atoms)
        index = TargetIndex(atoms)
        del atoms
        gc.collect()
        # The plan/index's atoms pin the terms, so the interned singletons
        # (and therefore the uids in codes and postings) are still valid.
        assert Variable("WeakInternHeld") is plan.atoms[0].terms[0]
        assert Variable("WeakInternHeld").uid == plan.atoms[0].term_ids[0]
        assert index.atoms[0].terms[1] is Constant("weak-held")

    def test_equality_falls_back_to_value_for_uninterned_twins(self):
        # An exotic construction path (bypassing __new__'s intern lookup)
        # still compares equal by value — the documented guarantee that
        # makes stale references safe.
        twin = object.__new__(Variable)
        object.__setattr__(twin, "name", "WeakInternTwin")
        object.__setattr__(twin, "uid", -1)
        object.__setattr__(twin, "_hash", hash(("WeakInternTwin",)))
        canonical = Variable("WeakInternTwin")
        assert twin is not canonical
        assert twin == canonical and canonical == twin
        assert hash(twin) == hash(canonical)

    def test_pickle_reinterns_after_original_died(self):
        import gc

        payload = pickle.dumps(Constant("weak-intern-pickled"))
        gc.collect()  # the original may already be dead
        loaded = pickle.loads(payload)
        assert loaded is Constant("weak-intern-pickled")
        assert loaded.value == "weak-intern-pickled"
