"""Tests for individual chase steps and the set-semantics chase (Section 2.4)."""

from __future__ import annotations

import pytest

from repro.chase import (
    ChaseFailedError,
    apply_egd_step,
    apply_tgd_step,
    is_egd_applicable,
    is_tgd_applicable,
    iter_applicable_egd_homomorphisms,
    iter_applicable_tgd_homomorphisms,
    set_chase,
    set_chase_terminates,
)
from repro.chase.steps import conclusion_instantiation, deduplicate_body
from repro.core.terms import Constant, Variable
from repro.database import canonical_database, satisfies_all
from repro.datalog import parse_dependencies, parse_egd, parse_query, parse_tgd
from repro.exceptions import ChaseNonTerminationError


class TestTgdSteps:
    def test_applicability_requires_missing_conclusion(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        missing = parse_query("Q(X) :- p(X,Y)")
        present = parse_query("Q(X) :- p(X,Y), s(X,W)")
        assert is_tgd_applicable(missing, tgd)
        assert not is_tgd_applicable(present, tgd)

    def test_not_applicable_without_premise_match(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        query = parse_query("Q(X) :- r(X,Y)")
        assert not is_tgd_applicable(query, tgd)

    def test_apply_adds_instantiated_conclusion(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        query = parse_query("Q(X) :- p(X,Y)")
        hom = next(iter_applicable_tgd_homomorphisms(query, tgd))
        chased, record = apply_tgd_step(query, tgd, hom)
        assert len(chased.body) == 2
        assert chased.body[1].predicate == "s"
        # The existential position got a fresh variable distinct from X, Y.
        fresh = chased.body[1].terms[1]
        assert fresh not in (Variable("X"), Variable("Y"))
        assert record.kind == "tgd" and len(record.added_atoms) == 1

    def test_fresh_variables_avoid_used_names(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        query = parse_query("Q(X) :- p(X,Y)")
        hom = next(iter_applicable_tgd_homomorphisms(query, tgd))
        used = {"X", "Y", "Z", "Z_1"}
        atoms, fresh = conclusion_instantiation(query, tgd, hom, used)
        assert all(v.name not in {"X", "Y", "Z", "Z_1"} or v.name in used for v in fresh.values())
        assert fresh[Variable("Z")].name in used  # recorded back into the used set

    def test_full_tgd_application(self):
        tgd = parse_tgd("p(X,Y) -> r(X)")
        query = parse_query("Q(X) :- p(X,Y)")
        hom = next(iter_applicable_tgd_homomorphisms(query, tgd))
        chased, _ = apply_tgd_step(query, tgd, hom)
        assert chased.body[-1].terms == (Variable("X"),)

    def test_multiple_homomorphisms(self):
        tgd = parse_tgd("p(X,Y) -> r(X)")
        query = parse_query("Q(X) :- p(X,Y), p(Y,Z)")
        homs = list(iter_applicable_tgd_homomorphisms(query, tgd))
        assert len(homs) == 2


class TestEgdSteps:
    def test_applicability_and_application(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,A), s(X,B), r(A)")
        assert is_egd_applicable(query, egd)
        hom, left, right = next(iter_applicable_egd_homomorphisms(query, egd))
        chased, record = apply_egd_step(query, egd, hom, left, right)
        # A and B identified everywhere, including in r(A).
        assert len(set(chased.body)) == 2
        assert record.kind == "egd" and record.substitution

    def test_variable_constant_identification(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,A), s(X,3)")
        hom, left, right = next(iter_applicable_egd_homomorphisms(query, egd))
        chased, _ = apply_egd_step(query, egd, hom, left, right)
        variables = {v for atom in chased.body for v in atom.variables()}
        assert Variable("A") not in variables

    def test_constant_constant_conflict_fails(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,1), s(X,2)")
        hom, left, right = next(iter_applicable_egd_homomorphisms(query, egd))
        with pytest.raises(ChaseFailedError):
            apply_egd_step(query, egd, hom, left, right)

    def test_not_applicable_when_already_equal(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,A), r(A)")
        assert not is_egd_applicable(query, egd)

    def test_deduplicate_body_respects_predicate_filter(self):
        query = parse_query("Q(X) :- p(X,Y), p(X,Y), s(X,Y), s(X,Y)")
        assert len(deduplicate_body(query).body) == 2
        assert len(deduplicate_body(query, {"s"}).body) == 3


class TestSetChase:
    def test_terminal_result_satisfies_dependencies(self, ex41):
        result = set_chase(ex41.q4, ex41.dependencies)
        assert result.terminated
        canonical = canonical_database(result.query).instance
        assert satisfies_all(canonical, ex41.dependencies, check_set_valuedness=False)

    def test_chase_of_terminal_query_is_noop(self, ex41):
        result = set_chase(ex41.q1, ex41.dependencies)
        assert result.step_count == 0
        assert result.query == ex41.q1

    def test_example_4_1_set_chase_equivalent_to_q1(self, ex41):
        from repro.core import is_set_equivalent

        result = set_chase(ex41.q4, ex41.dependencies)
        assert is_set_equivalent(result.query, ex41.q1)

    def test_egd_only_chase(self):
        sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z")
        query = parse_query("Q(X) :- s(X,A), s(X,B), s(X,C)")
        result = set_chase(query, sigma)
        assert len(result.query.body) == 1

    def test_inclusion_dependency_chain(self):
        sigma = parse_dependencies("""
            r1(X,Y) -> r2(Y,Z)
            r2(X,Y) -> r3(Y,Z)
        """)
        query = parse_query("Q(X) :- r1(X,Y)")
        result = set_chase(query, sigma)
        assert result.query.predicate_counts() == {"r1": 1, "r2": 1, "r3": 1}

    def test_non_terminating_chase_raises(self):
        sigma = parse_dependencies("e(X,Y) -> e(Y,Z)")
        query = parse_query("Q(X) :- e(X,Y)")
        with pytest.raises(ChaseNonTerminationError):
            set_chase(query, sigma, max_steps=25)
        assert not set_chase_terminates(query, sigma, max_steps=25)

    def test_result_records_steps(self, ex41):
        result = set_chase(ex41.q4, ex41.dependencies)
        assert result.step_count == len(result.steps) > 0
        assert all(record.kind in ("tgd", "egd") for record in result.steps)

    def test_determinism(self, ex41):
        first = set_chase(ex41.q4, ex41.dependencies)
        second = set_chase(ex41.q4, ex41.dependencies)
        assert first.query == second.query

    def test_regularize_flag_preserves_equivalence(self, ex41):
        from repro.core import is_set_equivalent

        with_reg = set_chase(ex41.q4, ex41.dependencies, regularize=True)
        without_reg = set_chase(ex41.q4, ex41.dependencies, regularize=False)
        assert is_set_equivalent(with_reg.query, without_reg.query)
