"""Tests for candidate enumeration, Σ-minimality, and the C&B family of
reformulation algorithms (Section 6.3, Appendix A)."""

from __future__ import annotations

import pytest

from repro.core import are_isomorphic
from repro.datalog import parse_aggregate_query, parse_dependencies, parse_query
from repro.equivalence import decide_equivalence
from repro.paperlib import chain_workload, orders_workload
from repro.reformulation import (
    bag_c_and_b,
    bag_set_c_and_b,
    c_and_b,
    chase_and_backchase,
    count_subquery_candidates,
    is_sigma_minimal,
    is_sigma_minimal_aggregate,
    iter_subqueries,
    max_min_c_and_b,
    naive_bag_c_and_b,
    reformulate_aggregate_query,
    sum_count_c_and_b,
)
from repro.semantics import Semantics


class TestCandidates:
    def test_only_safe_subqueries(self):
        plan = parse_query("Q(X,Y) :- p(X,Z), r(Z,Y), s(Z)")
        candidates = list(iter_subqueries(plan))
        for candidate in candidates:
            covered = {v for atom in candidate.body for v in atom.variables()}
            assert set(plan.head_variables()) <= covered
        # {p, r}, {p, r, s} are the only safe subsets.
        assert len(candidates) == 2

    def test_sizes_increase(self):
        plan = parse_query("Q(X) :- p(X,Y), r(X), s(X)")
        sizes = [len(c.body) for c in iter_subqueries(plan)]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1 and sizes[-1] == 3

    def test_exclude_full_and_max_size(self):
        plan = parse_query("Q(X) :- p(X,Y), r(X), s(X)")
        assert all(
            len(c.body) < 3 for c in iter_subqueries(plan, include_full=False)
        )
        assert all(len(c.body) <= 2 for c in iter_subqueries(plan, max_size=2))

    def test_count_candidates(self):
        plan = parse_query("Q(X) :- p(X,Y), r(X), s(X)")
        assert count_subquery_candidates(plan) == 7


class TestSigmaMinimality:
    def test_single_atom_query_minimal(self, ex41):
        assert is_sigma_minimal(ex41.q4, ex41.dependencies, Semantics.BAG)

    def test_q3_not_sigma_minimal_under_bag(self, ex41):
        # Dropping s or t from Q3 keeps bag equivalence under Σ (the chase
        # regenerates them), so Q3 is not Σ-minimal.
        assert not is_sigma_minimal(ex41.q3, ex41.dependencies, Semantics.BAG)

    def test_q1_not_sigma_minimal_under_set(self, ex41):
        assert not is_sigma_minimal(ex41.q1, ex41.dependencies, Semantics.SET)

    def test_minimal_without_dependencies(self):
        query = parse_query("Q(X) :- p(X,Y), r(Y)")
        assert is_sigma_minimal(query, [], Semantics.SET)
        redundant = parse_query("Q(X) :- p(X,Y), p(X,Z)")
        assert not is_sigma_minimal(redundant, [], Semantics.SET)

    def test_aggregate_minimality_uses_core(self, ex41):
        minimal = parse_aggregate_query("Q(X, max(Y)) :- p(X,Y)")
        redundant = parse_aggregate_query("Q(X, max(Y)) :- p(X,Y), r(X)")
        assert is_sigma_minimal_aggregate(minimal, ex41.dependencies)
        assert not is_sigma_minimal_aggregate(redundant, ex41.dependencies)


class TestCBOnExample41:
    def test_set_cb_reformulation_space(self, ex41):
        result = c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
        # All four of the paper's queries are equivalent reformulations under set semantics.
        for query in (ex41.q1, ex41.q2, ex41.q3, ex41.q4):
            assert result.contains_isomorphic(query)

    def test_bag_cb_excludes_q1_and_q2(self, ex41):
        result = bag_c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
        assert result.contains_isomorphic(ex41.q3)
        assert result.contains_isomorphic(ex41.q4)
        assert not result.contains_isomorphic(ex41.q1)
        assert not result.contains_isomorphic(ex41.q2)

    def test_bag_set_cb_excludes_q1_keeps_q2(self, ex41):
        result = bag_set_c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
        assert result.contains_isomorphic(ex41.q2)
        assert result.contains_isomorphic(ex41.q3)
        assert not result.contains_isomorphic(ex41.q1)

    def test_every_output_is_equivalent(self, ex41):
        for algorithm, semantics in (
            (c_and_b, "set"),
            (bag_c_and_b, "bag"),
            (bag_set_c_and_b, "bag-set"),
        ):
            result = algorithm(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
            for reformulation in result.reformulations:
                assert decide_equivalence(
                    reformulation, ex41.q4, ex41.dependencies, semantics
                ).equivalent

    def test_minimal_reformulations_are_sigma_minimal(self, ex41):
        result = bag_c_and_b(ex41.q4, ex41.dependencies)
        assert result.minimal_reformulations
        for reformulation in result.minimal_reformulations:
            assert is_sigma_minimal(reformulation, ex41.dependencies, Semantics.BAG)

    def test_naive_bag_cb_is_unsound(self, ex41):
        # Section 4.1: the naive extension accepts reformulations that are not
        # bag equivalent to the input query.
        naive = naive_bag_c_and_b(ex41.q4, ex41.dependencies)
        unsound = [
            query
            for query in naive.reformulations
            if not decide_equivalence(query, ex41.q4, ex41.dependencies, "bag")
        ]
        assert unsound, "the naive algorithm should accept unsound reformulations"
        # The sound Bag-C&B accepts none of those.
        sound = bag_c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
        for query in sound.reformulations:
            assert decide_equivalence(query, ex41.q4, ex41.dependencies, "bag")

    def test_result_reporting(self, ex41):
        result = bag_c_and_b(ex41.q4, ex41.dependencies)
        assert result.candidates_examined > 0
        assert len(result) == len(result.minimal_reformulations)
        assert "universal plan" in str(result)
        assert list(iter(result)) == result.minimal_reformulations


class TestCBOnWorkloads:
    def test_orders_set_cb_removes_foreign_key_joins(self, orders):
        result = c_and_b(orders.query, orders.dependencies, check_sigma_minimality=False)
        bodies = sorted(len(q.body) for q in result.reformulations)
        # The single-subgoal orders-only query is an equivalent reformulation.
        assert bodies[0] == 1
        single = next(q for q in result.reformulations if len(q.body) == 1)
        assert single.body[0].predicate == "orders"

    def test_orders_bag_cb_also_removes_joins(self, orders):
        # customer and product are set valued with keys, so the lookups are
        # multiplicity preserving and may be dropped under bag semantics too.
        result = bag_c_and_b(orders.query, orders.dependencies, check_sigma_minimality=False)
        assert any(len(q.body) == 1 for q in result.reformulations)

    def test_chain_workload_cb_shortens_query(self, chain3):
        result = c_and_b(chain3.query, chain3.dependencies, check_sigma_minimality=False)
        assert any(len(q.body) < len(chain3.query.body) for q in result.reformulations)

    def test_chase_and_backchase_generic_entry(self, orders):
        result = chase_and_backchase(
            orders.query, orders.dependencies, Semantics.BAG_SET,
            check_sigma_minimality=False,
        )
        assert result.semantics is Semantics.BAG_SET
        assert result.reformulations


class TestAggregateCB:
    def test_max_min_cb(self, ex41):
        query = parse_aggregate_query("Q(X, max(Y)) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)")
        result = max_min_c_and_b(query, ex41.dependencies, check_sigma_minimality=False)
        # The core can be reformulated down to p(X,Y) alone under set semantics.
        assert any(len(q.body) == 1 for q in result.reformulations)
        assert all(q.aggregate == query.aggregate for q in result.reformulations)

    def test_sum_count_cb(self, ex41):
        query = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)")
        result = sum_count_c_and_b(query, ex41.dependencies, check_sigma_minimality=False)
        assert any(len(q.body) == 1 for q in result.reformulations)
        # Every output is equivalent as an aggregate query under Σ.
        from repro.equivalence import equivalent_aggregate_queries_under_dependencies

        for reformulation in result.reformulations:
            assert equivalent_aggregate_queries_under_dependencies(
                reformulation, query, ex41.dependencies
            )

    def test_dispatch_by_function(self, ex41):
        sum_query = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y), t(X,Y,W)")
        max_query = parse_aggregate_query("Q(X, max(Y)) :- p(X,Y), t(X,Y,W)")
        assert reformulate_aggregate_query(
            sum_query, ex41.dependencies
        ).core_result.semantics is Semantics.BAG_SET
        assert reformulate_aggregate_query(
            max_query, ex41.dependencies
        ).core_result.semantics is Semantics.SET

    def test_result_reporting(self, ex41):
        query = parse_aggregate_query("Q(X, min(Y)) :- p(X,Y), t(X,Y,W)")
        result = max_min_c_and_b(query, ex41.dependencies)
        assert len(result) == len(result.minimal_reformulations)
        assert "aggregate reformulation" in str(result)


class TestSigmaMinimize:
    """Greedy Σ-minimization (the subgoal-removal half of Definition 3.1)."""

    def test_q1_minimizes_to_q4_under_set_semantics(self, ex41):
        from repro.reformulation import sigma_minimize

        minimized = sigma_minimize(ex41.q1, ex41.dependencies, Semantics.SET)
        assert are_isomorphic(minimized, ex41.q4)

    def test_q3_minimizes_to_q4_under_bag_semantics(self, ex41):
        from repro.reformulation import sigma_minimize

        minimized = sigma_minimize(ex41.q3, ex41.dependencies, Semantics.BAG)
        assert are_isomorphic(minimized, ex41.q4)

    def test_q1_keeps_u_and_r_under_bag_set_semantics(self, ex41):
        from repro.reformulation import sigma_minimize

        minimized = sigma_minimize(ex41.q1, ex41.dependencies, Semantics.BAG_SET)
        # The u-subgoal cannot be dropped (its multiplicity contribution is
        # unconstrained), so the minimized query still mentions u.
        assert "u" in minimized.predicates()
        assert decide_equivalence(
            minimized, ex41.q1, ex41.dependencies, "bag-set"
        ).equivalent

    def test_minimized_query_is_sigma_minimal(self, ex41):
        from repro.reformulation import sigma_minimize

        minimized = sigma_minimize(ex41.q2, ex41.dependencies, Semantics.BAG_SET)
        assert is_sigma_minimal(minimized, ex41.dependencies, Semantics.BAG_SET)

    def test_no_dependencies_reduces_to_classical_minimization(self):
        from repro.core import minimize
        from repro.reformulation import sigma_minimize

        query = parse_query("Q(X) :- p(X,Y), p(X,Z), r(Y)")
        assert are_isomorphic(sigma_minimize(query, [], Semantics.SET), minimize(query))
