"""Tests for the incremental chase (src/repro/chase/incremental.py).

Covers the checkpoint round trip, monotone resume vs cold equivalence
(Example 4.1 deltas plus a seeded 300-case campaign through the fuzz
oracle's incremental leg), the non-monotone / name-collision fallbacks, the
Session ``apply_delta`` integration (cache write-through, stats counters,
strict-precheck atomicity), the serve wire path (``apply-delta`` op and the
``delta-rejected`` error code), and the incremental view maintainer.
"""

from __future__ import annotations

import json

import pytest

from repro.chase import sound_chase
from repro.chase.incremental import (
    ChaseCheckpoint,
    ChaseDelta,
    ResumableChase,
    chase_with_checkpoint,
    has_applicable_step,
    resume_chase,
    validate_delta,
)
from repro.core import are_isomorphic, is_set_equivalent
from repro.core.bag_equivalence import is_bag_set_equivalent
from repro.datalog import parse_dependencies, parse_dependency, parse_query, render_query
from repro.datalog.parser import parse_atoms
from repro.dependencies import DependencySet
from repro.exceptions import DeltaRejectedError, PrecheckFailedError
from repro.semantics import Semantics
from repro.serve import ReproClient, ReproServer, ServerError
from repro.session import Session
from repro.views import IncrementalViewRewriter, ViewDefinition, ViewSet, rewrite_query_using_views

ALL_SEMANTICS = (Semantics.SET, Semantics.BAG_SET, Semantics.BAG)


def _atoms(text: str):
    return tuple(parse_atoms(text))


def _delta_atoms(text: str) -> ChaseDelta:
    return ChaseDelta.atoms(*parse_atoms(text))


# --------------------------------------------------------------------------- #
class TestChaseDelta:
    def test_empty_and_monotone(self):
        assert ChaseDelta().is_empty
        delta = _delta_atoms("p(X, Y)")
        assert not delta.is_empty
        assert delta.is_monotone
        removal = ChaseDelta(removed_atoms=_atoms("p(X, Y)"))
        assert not removal.is_monotone

    def test_validate_rejects_empty(self, ex41):
        with pytest.raises(DeltaRejectedError) as excinfo:
            validate_delta(ex41.q4, ex41.dependencies, ChaseDelta())
        assert excinfo.value.reason == "empty-delta"

    def test_validate_rejects_unknown_removals(self, ex41):
        with pytest.raises(DeltaRejectedError) as excinfo:
            validate_delta(
                ex41.q4,
                ex41.dependencies,
                ChaseDelta(removed_atoms=_atoms("zzz(X)")),
            )
        assert excinfo.value.reason == "unknown-atom"
        with pytest.raises(DeltaRejectedError) as excinfo:
            validate_delta(
                ex41.q4,
                ex41.dependencies,
                ChaseDelta(
                    removed_dependencies=tuple(
                        parse_dependency("q(X) -> q2(X)", "nope")
                    )
                ),
            )
        assert excinfo.value.reason == "unknown-dependency"

    def test_validate_rejects_arity_conflicts(self, ex41):
        with pytest.raises(DeltaRejectedError) as excinfo:
            validate_delta(ex41.q4, ex41.dependencies, _delta_atoms("p(X)"))
        assert excinfo.value.reason == "arity-conflict"

    def test_unsafe_removal_rejected(self, ex41):
        _, checkpoint = chase_with_checkpoint(
            ex41.q4, ex41.dependencies, Semantics.SET
        )
        # Removing the only atom binding the head variable is rejected and
        # does not fall back to a cold chase.
        with pytest.raises(DeltaRejectedError) as excinfo:
            resume_chase(
                checkpoint, ChaseDelta(removed_atoms=tuple(ex41.q4.body))
            )
        assert excinfo.value.reason == "unsafe-removal"


# --------------------------------------------------------------------------- #
class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    def test_json_round_trip_preserves_state(self, ex41, semantics):
        _, checkpoint = chase_with_checkpoint(
            ex41.q3, ex41.dependencies, semantics
        )
        payload = json.loads(json.dumps(checkpoint.as_dict()))
        clone = ChaseCheckpoint.from_dict(payload)
        assert clone.base_query == checkpoint.base_query
        assert clone.result.query == checkpoint.result.query
        assert clone.semantics == checkpoint.semantics
        assert clone.max_steps == checkpoint.max_steps
        assert clone.used_names == checkpoint.used_names
        assert clone.egd_clean == checkpoint.egd_clean
        assert clone.tgd_clean == checkpoint.tgd_clean
        # Records are compared by rendered form: dependency equality is
        # identity-based, so the parsed twins are structurally equal twins.
        assert [str(s) for s in clone.result.steps] == [
            str(s) for s in checkpoint.result.steps
        ]

    def test_clone_is_resumable(self):
        """A parsed-back checkpoint replays the bag-set record path."""
        deps = parse_dependencies("e(X, Y) -> f(X, Y)")
        _, checkpoint = chase_with_checkpoint(
            parse_query("Q(X) :- e(X, Y)"), deps, Semantics.BAG_SET
        )
        clone = ChaseCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.as_dict()))
        )
        delta = _delta_atoms("e(X, Y2)")
        original = resume_chase(checkpoint, delta)
        replayed = resume_chase(clone, delta)
        assert original.resumed and replayed.resumed
        assert str(original.result.query) == str(replayed.result.query)
        assert original.new_steps == replayed.new_steps == 1


# --------------------------------------------------------------------------- #
class TestResumeVsCold:
    """Example 4.1 grown delta by delta, resumed vs cold, all semantics."""

    #: Q4 grown to Q1 one subgoal at a time (the Example 4.1 ladder).
    LADDER = ["t(X, Y, W)", "s(X, Z)", "r(X)", "u(X, U)"]

    @pytest.mark.parametrize("semantics", ALL_SEMANTICS)
    def test_ladder_equivalent_to_cold(self, ex41, semantics):
        """Every ladder state: fixpoint + Σ-equivalence, resumed or not.

        Under set semantics every delta resumes.  Under bag / bag-set the
        ladder atoms extend recorded trigger conclusions, so the replay
        validation correctly abandons some steps and falls back cold — the
        outcome must be equivalent either way, and the fallback reason must
        be one of the replay-validation slugs.
        """
        _, checkpoint = chase_with_checkpoint(
            ex41.q4, ex41.dependencies, semantics
        )
        session = Session(dependencies=ex41.dependencies)
        strategy = session.strategy_for(semantics)
        for text in self.LADDER:
            outcome = resume_chase(checkpoint, _delta_atoms(text))
            if semantics is Semantics.SET:
                assert outcome.resumed, outcome.fallback_reason
            elif not outcome.resumed:
                assert outcome.fallback_reason.startswith("replay-"), (
                    outcome.fallback_reason
                )
            checkpoint = outcome.checkpoint
            cold = sound_chase(
                checkpoint.base_query, ex41.dependencies, semantics
            )
            # The resumed terminal state is a genuine fixpoint...
            assert not has_applicable_step(
                outcome.result.query, ex41.dependencies, semantics
            )
            # ... and Σ-equivalent to the cold chase of the same state.
            assert strategy.equivalent_chased(
                outcome.result.query, cold.query, ex41.dependencies
            )

    @pytest.mark.parametrize("semantics", (Semantics.BAG, Semantics.BAG_SET))
    def test_full_tgd_replay_resumes(self, semantics):
        """Record replay succeeds when deltas leave recorded triggers valid."""
        from repro.paperlib import clique_workload

        workload = clique_workload(5)
        base = workload.query.with_body(workload.query.body[:-1])
        added = workload.query.body[-1]
        _, checkpoint = chase_with_checkpoint(
            base, workload.dependencies, semantics
        )
        outcome = resume_chase(checkpoint, ChaseDelta.atoms(added))
        assert outcome.resumed, outcome.fallback_reason
        assert outcome.replayed_steps == checkpoint.result.step_count
        assert outcome.new_steps > 0
        cold = sound_chase(
            outcome.checkpoint.base_query, workload.dependencies, semantics
        )
        assert is_bag_set_equivalent(outcome.result.query, cold.query)

    def test_final_state_matches_q1_chase(self, ex41):
        _, checkpoint = chase_with_checkpoint(
            ex41.q4, ex41.dependencies, Semantics.SET
        )
        for text in self.LADDER:
            checkpoint = resume_chase(checkpoint, _delta_atoms(text)).checkpoint
        assert are_isomorphic(checkpoint.base_query, ex41.q1) or is_set_equivalent(
            sound_chase(checkpoint.base_query, ex41.dependencies, Semantics.SET).query,
            sound_chase(ex41.q1, ex41.dependencies, Semantics.SET).query,
        )

    def test_sigma_delta_resumes(self, ex41):
        base_sigma = DependencySet(
            [d for d in ex41.dependencies if d.name != "sigma4"],
            ex41.dependencies.set_valued_predicates,
        )
        sigma4 = next(d for d in ex41.dependencies if d.name == "sigma4")
        _, checkpoint = chase_with_checkpoint(ex41.q1, base_sigma, Semantics.SET)
        outcome = resume_chase(checkpoint, ChaseDelta.dependencies(sigma4))
        assert outcome.resumed
        cold = sound_chase(ex41.q1, outcome.checkpoint.sigma, Semantics.SET)
        assert is_set_equivalent(outcome.result.query, cold.query)

    def test_steps_saved_accounting(self, ex41):
        result, checkpoint = chase_with_checkpoint(
            ex41.q4, ex41.dependencies, Semantics.SET
        )
        outcome = resume_chase(checkpoint, _delta_atoms("u(X, U)"))
        assert outcome.resumed
        assert outcome.replayed_steps == result.step_count
        assert outcome.steps_saved == result.step_count
        assert outcome.result.step_count == outcome.replayed_steps + outcome.new_steps


class TestFallbacks:
    def test_non_monotone_delta_falls_back_cold(self, ex41):
        _, checkpoint = chase_with_checkpoint(
            ex41.q3, ex41.dependencies, Semantics.SET
        )
        removable = checkpoint.base_query.body[1]  # t(...): X stays bound via p
        outcome = resume_chase(checkpoint, ChaseDelta(removed_atoms=(removable,)))
        assert not outcome.resumed
        assert outcome.fallback_reason == "non-monotone-delta"
        assert outcome.replayed_steps == 0
        # The fallback still produces a usable checkpoint for later deltas.
        follow_up = resume_chase(outcome.checkpoint, _delta_atoms("r(X)"))
        assert follow_up.resumed

    def test_name_collision_falls_back_cold(self, ex41):
        _, checkpoint = chase_with_checkpoint(
            ex41.q4, ex41.dependencies, Semantics.SET
        )
        generated = sorted(checkpoint.chase_generated_names())
        assert generated, "expected the chase to invent labeled nulls"
        collision = parse_query(
            f"Q(X) :- p(X, {generated[0]})"
        ).body  # reuse a chase-invented name in the delta
        outcome = resume_chase(checkpoint, ChaseDelta.atoms(*collision))
        assert not outcome.resumed
        assert outcome.fallback_reason == "name-collision"

    def test_sigma_removal_falls_back_cold(self, ex41):
        _, checkpoint = chase_with_checkpoint(
            ex41.q1, ex41.dependencies, Semantics.SET
        )
        sigma3 = next(d for d in ex41.dependencies if d.name == "sigma3")
        outcome = resume_chase(
            checkpoint, ChaseDelta(removed_dependencies=(sigma3,))
        )
        assert not outcome.resumed
        assert outcome.fallback_reason == "non-monotone-delta"
        assert len(outcome.checkpoint.sigma) == len(ex41.dependencies) - 1


# --------------------------------------------------------------------------- #
class TestSeededCampaign:
    def test_300_generated_cases_pass_the_incremental_leg(self):
        """The fuzz oracle's incremental-resume leg over 300 seeded cases."""
        from repro.fuzz.generator import generate_case
        from repro.fuzz.oracle import CaseReport, _check_incremental_resume

        mismatches = []
        for index in range(300):
            case = generate_case(7, index)
            report = CaseReport(case=case)
            _check_incremental_resume(case, report)
            mismatches.extend(str(m) for m in report.mismatches)
        assert not mismatches, mismatches[:5]


# --------------------------------------------------------------------------- #
class TestResumableChase:
    def test_lazy_run_and_stats(self, ex41):
        chase = ResumableChase(ex41.q4, ex41.dependencies, Semantics.SET)
        stats = chase.stats()
        assert stats["cold_runs"] == 0
        first = chase.run()
        assert chase.run() is first  # memoized
        chase.apply(_delta_atoms("t(X, Y, W)"))
        stats = chase.stats()
        assert stats["cold_runs"] == 1
        assert stats["deltas_applied"] == 1
        assert stats["resumed_runs"] == 1


# --------------------------------------------------------------------------- #
class TestSessionApplyDelta:
    def test_resume_after_session_chase(self, ex41):
        session = Session(dependencies=ex41.dependencies, chase_resumable=True)
        session.chase(ex41.q4, "set")  # cold run captures a checkpoint
        outcome = session.apply_delta(
            ex41.q4, _delta_atoms("t(X, Y, W)"), "set"
        )
        assert outcome.resumed
        stats = session.stats()["incremental"]
        assert stats["resumable"] is True
        assert stats["deltas_applied"] == 1
        assert stats["resumed_runs"] == 1
        assert stats["steps_saved"] > 0

    def test_no_checkpoint_goes_cold(self, ex41):
        session = Session(dependencies=ex41.dependencies, chase_resumable=True)
        outcome = session.apply_delta(
            ex41.q4, _delta_atoms("t(X, Y, W)"), "bag-set"
        )
        assert not outcome.resumed
        assert outcome.fallback_reason == "no-checkpoint"
        assert session.stats()["incremental"]["cold_runs"] == 1

    def test_result_is_cached_for_later_chases(self, ex41):
        session = Session(dependencies=ex41.dependencies, chase_resumable=True)
        session.chase(ex41.q4, "set")
        outcome = session.apply_delta(ex41.q4, _delta_atoms("t(X, Y, W)"), "set")
        new_query = outcome.checkpoint.base_query
        hits_before = session.stats()["chase_cache"]["hits"]
        cached = session.chase(new_query, "set")
        assert cached is outcome.result
        assert session.stats()["chase_cache"]["hits"] == hits_before + 1

    def test_rejected_delta_counted_and_reraised(self, ex41):
        session = Session(dependencies=ex41.dependencies, chase_resumable=True)
        with pytest.raises(DeltaRejectedError):
            session.apply_delta(ex41.q4, ChaseDelta(), "set")
        assert session.stats()["incremental"]["deltas_rejected"] == 1

    def test_strict_precheck_keeps_session_intact(self, ex41):
        session = Session(
            dependencies=ex41.dependencies,
            chase_resumable=True,
            precheck="strict",
        )
        cyclic = parse_dependency("s(X, Y) -> s(Y, Z)", "cyclic")
        before = len(session.dependencies)
        with pytest.raises(PrecheckFailedError):
            session.apply_delta(
                ex41.q4, ChaseDelta.dependencies(*cyclic), "set"
            )
        assert len(session.dependencies) == before

    def test_sigma_catchup_after_session_sigma_grew(self, ex41):
        """A checkpoint taken under old Σ resumes after Σ grew elsewhere."""
        session = Session(dependencies=ex41.dependencies, chase_resumable=True)
        session.chase(ex41.q4, "set")
        extra = parse_dependency("u(X, Y) -> r(X)", "late")
        session.apply_delta(ex41.q2, ChaseDelta.dependencies(*extra), "set")
        # Q4's checkpoint predates the Σ growth; apply_delta folds the
        # missing suffix into the delta instead of going cold.
        outcome = session.apply_delta(ex41.q4, _delta_atoms("u(X, U)"), "set")
        assert outcome.resumed, outcome.fallback_reason


# --------------------------------------------------------------------------- #
@pytest.fixture()
def resumable_server(ex41):
    server = ReproServer(
        Session(dependencies=ex41.dependencies, chase_resumable=True), port=0
    )
    with server.start_in_thread() as handle:
        yield handle


@pytest.fixture()
def resumable_client(resumable_server):
    with ReproClient(resumable_server.host, resumable_server.port) as client:
        yield client


class TestServeApplyDelta:
    def test_cold_then_resumed_over_the_wire(self, resumable_client, ex41):
        query = render_query(ex41.q4)
        first = resumable_client.apply_delta(
            query, add_atoms="t(X, Y, W)", semantics="set"
        )
        assert first["resumed"] is False
        assert first["fallback_reason"] == "no-checkpoint"
        second = resumable_client.apply_delta(
            first["query"], add_atoms="s(X, Z)", semantics="set"
        )
        assert second["resumed"] is True
        assert second["replayed_steps"] > 0

    def test_sigma_delta_over_the_wire(self, resumable_client, ex41):
        query = render_query(ex41.q4)
        resumable_client.apply_delta(query, add_atoms="r(X)", semantics="set")
        result = resumable_client.apply_delta(
            "Q4(X) :- p(X, Y), r(X)",
            add_dependencies="u(X, Y) -> r(X)",
            semantics="set",
        )
        assert result["resumed"] is True
        assert result["dependencies"] == len(ex41.dependencies) + 1

    def test_delta_rejected_error_code(self, resumable_client, ex41):
        with pytest.raises(ServerError) as excinfo:
            resumable_client.apply_delta(
                render_query(ex41.q4), add_atoms="p(X)", semantics="set"
            )
        assert excinfo.value.code == "delta-rejected"
        assert excinfo.value.error["reason"] == "arity-conflict"

    def test_stats_carry_incremental_section(self, resumable_client):
        stats = resumable_client.stats()
        assert stats["incremental"]["resumable"] is True


# --------------------------------------------------------------------------- #
class TestIncrementalViewRewriter:
    @pytest.fixture()
    def setup(self):
        views = ViewSet(
            [
                ViewDefinition(
                    "v_oc",
                    parse_query("V(O, C) :- orders(O, C, P), customer(C, N)"),
                ),
                ViewDefinition(
                    "v_orders",
                    parse_query("V(O, C) :- orders(O, C, P)"),
                    distinct=True,
                ),
            ]
        )
        dependencies = parse_dependencies(
            """
            orders(O, C, P) -> customer(C, N)
            customer(C, N1) & customer(C, N2) -> N1 = N2
            """,
            set_valued=["customer"],
        )
        query = parse_query("Q(O, C) :- orders(O, C, P), customer(C, N)")
        return query, views, dependencies

    def test_matches_cold_rewriting(self, setup):
        query, views, dependencies = setup
        maintainer = IncrementalViewRewriter(query, views, dependencies)
        incremental = maintainer.rewrite()
        cold = rewrite_query_using_views(query, views, dependencies)
        assert len(incremental.rewritings) == len(cold.rewritings)
        for rewriting in incremental.rewritings:
            assert any(
                are_isomorphic(rewriting, other) for other in cold.rewritings
            )

    def test_atom_delta_resumes_and_matches_cold(self, setup):
        query, views, dependencies = setup
        maintainer = IncrementalViewRewriter(query, views, dependencies)
        maintainer.rewrite()
        result = maintainer.add_atoms(parse_atoms("customer(C, N2)"))
        assert maintainer.stats()["resumed_runs"] == 1
        cold = rewrite_query_using_views(maintainer.query, views, dependencies)
        assert len(result.rewritings) == len(cold.rewritings)

    def test_dependency_delta_resumes(self, setup):
        query, views, dependencies = setup
        maintainer = IncrementalViewRewriter(query, views, dependencies)
        maintainer.rewrite()
        extra = parse_dependency("customer(C, N) -> region(C, R)", "extra")
        result = maintainer.add_dependencies(extra)
        assert maintainer.stats()["resumed_runs"] == 1
        assert len(maintainer.dependencies) == len(dependencies) + 1
        cold = rewrite_query_using_views(
            maintainer.query, views, maintainer.dependencies
        )
        assert len(result.rewritings) == len(cold.rewritings)

    def test_view_predicates_rejected_in_deltas(self, setup):
        from repro.exceptions import ReformulationError

        query, views, dependencies = setup
        maintainer = IncrementalViewRewriter(query, views, dependencies)
        with pytest.raises(ReformulationError):
            maintainer.add_atoms(parse_atoms("v_oc(O, C)"))
