"""Unit tests for the compiled match-plan layer.

Covers plan compilation (slot assignment, constants, self-joins, repeated
variables), the int kernel's agreement with the frozen reference backtracker
when plans and indexes are reused, the per-Σ plan cache (keying, Σ-change
invalidation, LRU bound), the profile counters the chase drivers record, and
the Session-level plumbing.
"""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import Atom, EqualityAtom
from repro.core.homomorphism import TargetIndex, find_match, iter_matches
from repro.core.plan import MatchPlan
from repro.core.query import ConjunctiveQuery
from repro.core.reference import iter_homomorphisms_reference
from repro.core.terms import Constant, Variable
from repro.chase import sound_chase
from repro.chase.plans import EGDPlan, PlanCache, SigmaPlans, TGDPlan, default_plan_cache
from repro.dependencies.base import EGD, TGD, DependencySet
from repro.evaluation.assignments import iter_satisfying_assignments
from repro.database.instance import DatabaseInstance
from repro.paperlib import example_4_1
from repro.semantics import Semantics
from repro.session import Session

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestMatchPlanCompilation:
    def test_slots_assigned_in_first_occurrence_order(self):
        plan = MatchPlan([Atom("p", [Y, X]), Atom("q", [Z, Y])])
        assert plan.slot_vars == (Y, X, Z)
        assert plan.slot_of == {Y.uid: 0, X.uid: 1, Z.uid: 2}
        assert plan.codes == ((0, 1), (2, 0))

    def test_constants_encode_their_uid(self):
        one = Constant(1)
        plan = MatchPlan([Atom("p", [X, one])])
        assert plan.codes == ((0, ~one.uid),)
        # Decoding round-trips.
        assert ~plan.codes[0][1] == one.uid

    def test_repeated_variable_within_atom_shares_one_slot(self):
        plan = MatchPlan([Atom("p", [X, X, Y])])
        assert plan.slot_vars == (X, Y)
        assert plan.codes == ((0, 0, 1),)

    def test_self_join_atoms_share_slots_across_atoms(self):
        plan = MatchPlan([Atom("p", [X, Y]), Atom("p", [Y, X])])
        assert plan.slot_vars == (X, Y)
        assert plan.codes == ((0, 1), (1, 0))
        assert plan.sig_ids[0] == plan.sig_ids[1]

    def test_sig_ids_and_max_arity(self):
        plan = MatchPlan([Atom("p", [X]), Atom("q", [X, Y, Z])])
        assert plan.sig_ids == (Atom("p", [X]).sig_id, Atom("q", [X, Y, Z]).sig_id)
        assert plan.max_arity == 3
        assert plan.n_atoms == len(plan) == 2
        assert plan.n_slots == 3

    def test_plan_is_immutable(self):
        plan = MatchPlan([Atom("p", [X])])
        with pytest.raises(AttributeError):
            plan.codes = ()

    def test_empty_source_compiles(self):
        plan = MatchPlan([])
        assert plan.n_atoms == 0 and plan.n_slots == 0

    def test_body_plan_memoized_per_query(self):
        query = ConjunctiveQuery("Q", [X], [Atom("p", [X, Y])])
        assert query.body_plan() is query.body_plan()
        assert query.body_plan().atoms == query.body


def _random_atoms(rng, count, constant_bias):
    variables = [Variable(f"PX{i}") for i in range(5)]
    constants = [Constant(value) for value in (0, 1, "pa")]
    atoms = []
    for _ in range(count):
        predicate = rng.choice(("p", "q", "r"))
        arity = rng.randint(1, 3)
        terms = [
            rng.choice(constants) if rng.random() < constant_bias else rng.choice(variables)
            for _ in range(arity)
        ]
        atoms.append(Atom(predicate, terms))
    return atoms


class TestKernelAgainstReference:
    @pytest.mark.parametrize("seed", range(60))
    def test_reused_plan_and_index_match_reference(self, seed):
        """One compiled plan + one index, probed repeatedly, stays exact."""
        rng = random.Random(0xF1A7 + seed)
        source = _random_atoms(rng, rng.randint(1, 4), rng.choice((0.0, 0.3)))
        plan = MatchPlan(source)
        for _ in range(3):
            target = _random_atoms(rng, rng.randint(1, 6), rng.choice((0.0, 0.3)))
            index = TargetIndex(target)
            expected = list(iter_homomorphisms_reference(source, target))
            for _ in range(2):  # the same (plan, index) pair is reusable
                assert list(iter_matches(plan, index)) == expected

    def test_fixed_mapping_prebinds_slots(self):
        source = [Atom("p", [X, Y])]
        target = [Atom("p", [Variable("A"), Variable("B")]), Atom("p", [Variable("A"), Variable("C")])]
        plan = MatchPlan(source)
        index = TargetIndex(target)
        fixed = {Y: Variable("C")}
        expected = list(iter_homomorphisms_reference(source, target, fixed))
        assert list(iter_matches(plan, index, fixed)) == expected
        assert find_match(plan, index, fixed) == expected[0]

    def test_fixed_constant_must_be_identity(self):
        plan = MatchPlan([Atom("p", [X])])
        index = TargetIndex([Atom("p", [X])])
        assert list(iter_matches(plan, index, {Constant(1): Constant(2)})) == []

    def test_fixed_key_not_in_source_is_carried_through(self):
        plan = MatchPlan([Atom("p", [X])])
        index = TargetIndex([Atom("p", [Y])])
        extra = Variable("NotInSource")
        matches = list(iter_matches(plan, index, {extra: Y}))
        assert matches == [{extra: Y, X: Y}]

    def test_kernel_counts_searches_on_the_index(self):
        plan = MatchPlan([Atom("p", [X])])
        index = TargetIndex([Atom("p", [Y])])
        assert index.searches == 0
        list(iter_matches(plan, index))
        find_match(plan, index)
        assert index.searches == 2


class TestSigmaPlans:
    def _sigma(self):
        tgd = TGD([Atom("p", [X, Y])], [Atom("t", [X, Y, Z])], name="t1")
        egd = EGD([Atom("t", [X, Y, Z]), Atom("t", [X, Y, Variable("W")])],
                  EqualityAtom(Z, Variable("W")), name="e1")
        return DependencySet([tgd, egd], set_valued_predicates=["t"])

    def test_split_and_plans_align(self):
        plans = SigmaPlans(self._sigma())
        assert len(plans.tgd_plans) == len(plans.tgds)
        assert len(plans.egd_plans) == len(plans.egds)
        assert all(isinstance(p, TGDPlan) for p in plans.tgd_plans)
        assert all(isinstance(p, EGDPlan) for p in plans.egd_plans)
        for tgd, plan in zip(plans.tgds, plans.tgd_plans):
            assert plan.premise.atoms == tgd.premise
            assert plan.conclusion.atoms == tgd.conclusion
            assert plan.premise_predicates == {a.predicate for a in tgd.premise}

    def test_trigger_maps_cover_premise_predicates(self):
        plans = SigmaPlans(self._sigma())
        assert set(plans.egd_trigger_map) == {"t"}
        assert plans.egd_trigger_map["t"] == (0,)
        assert set(plans.tgd_trigger_map) == {"p"}

    def test_cache_hit_on_same_sigma(self):
        cache = PlanCache()
        sigma = self._sigma()
        first = cache.plans_for(sigma)
        assert cache.plans_for(sigma) is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_cache_invalidated_by_sigma_mutation(self):
        """Σ change → new fingerprint → fresh plans, never stale ones."""
        cache = PlanCache()
        sigma = self._sigma()
        first = cache.plans_for(sigma)
        sigma.add(TGD([Atom("p", [X, Y])], [Atom("r", [X])], name="t2"))
        second = cache.plans_for(sigma)
        assert second is not first
        assert len(second.tgds) == len(first.tgds) + 1
        assert cache.misses == 2

    def test_cache_distinguishes_dependency_names(self):
        """Step records print dependency names, so names must split entries."""
        cache = PlanCache()
        tgd_a = TGD([Atom("p", [X, Y])], [Atom("r", [X])], name="a")
        tgd_b = TGD([Atom("p", [X, Y])], [Atom("r", [X])], name="b")
        plans_a = cache.plans_for(DependencySet([tgd_a]))
        plans_b = cache.plans_for(DependencySet([tgd_b]))
        assert plans_a is not plans_b
        assert plans_a.tgds[0].name == "a" and plans_b.tgds[0].name == "b"

    def test_cache_distinguishes_regularize_flag(self):
        cache = PlanCache()
        sigma = self._sigma()
        assert cache.plans_for(sigma, regularize=True) is not cache.plans_for(
            sigma, regularize=False
        )

    def test_cache_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        sigmas = [
            DependencySet([TGD([Atom("p", [X, Y])], [Atom(f"r{i}", [X])])])
            for i in range(3)
        ]
        plans = [cache.plans_for(s) for s in sigmas]
        assert cache.evictions == 1
        # The oldest entry was evicted; re-requesting recompiles.
        assert cache.plans_for(sigmas[0]) is not plans[0]
        # The most recent entry is still cached.
        assert cache.plans_for(sigmas[2]) is plans[2]

    def test_plain_sequences_are_accepted(self):
        cache = PlanCache()
        tgd = TGD([Atom("p", [X, Y])], [Atom("r", [X])])
        plans = cache.plans_for([tgd])
        assert plans.tgds and not plans.egds


class TestChaseProfilePlanCounters:
    def test_cold_chase_records_plan_compile_then_reuse(self):
        ex41 = example_4_1()
        cache = PlanCache()
        first = sound_chase(
            ex41.q1, ex41.dependencies, Semantics.BAG_SET, plan_cache=cache
        )
        assert first.profile is not None
        assert first.profile.plans_compiled >= 1
        assert first.profile.kernel_searches > 0
        second = sound_chase(
            ex41.q2, ex41.dependencies, Semantics.BAG_SET, plan_cache=cache
        )
        assert second.profile is not None
        assert second.profile.plans_reused >= 1
        # Re-chasing q2 finds every plan set — the outer Σ's and the nested
        # Definition 4.3 test chases' — already compiled.
        third = sound_chase(
            ex41.q2, ex41.dependencies, Semantics.BAG_SET, plan_cache=cache
        )
        assert third.profile is not None
        assert third.profile.plans_compiled == 0
        assert third.profile.plans_reused >= 1

    def test_profile_summary_mentions_plans_and_kernel(self):
        ex41 = example_4_1()
        result = sound_chase(
            ex41.q1, ex41.dependencies, Semantics.BAG_SET, plan_cache=PlanCache()
        )
        summary = "\n".join(result.profile.summary_lines())
        assert "match plans" in summary
        assert "kernel searches" in summary


class TestSessionPlanCache:
    def test_session_uses_default_process_cache(self):
        session = Session(dependencies=example_4_1().dependencies)
        assert session.plan_cache is default_plan_cache()

    def test_session_threads_injected_cache_into_chases(self):
        ex41 = example_4_1()
        cache = PlanCache()
        session = Session(dependencies=ex41.dependencies, plan_cache=cache)
        session.chase(ex41.q1, "bag-set")
        session.chase(ex41.q2, "bag-set")
        hits, misses, _ = session.plan_cache_stats()
        assert misses >= 1
        # Every plan set (outer Σ and the nested Definition 4.3 chases') is
        # now compiled; a fresh query under the same Σ only reuses.
        session.clear_cache()
        session.chase(ex41.q2, "bag-set")
        hits_after, misses_after, _ = session.plan_cache_stats()
        assert misses_after == misses
        assert hits_after > hits

    def test_set_dependencies_leads_to_fresh_plans(self):
        ex41 = example_4_1()
        cache = PlanCache()
        session = Session(dependencies=ex41.dependencies, plan_cache=cache)
        session.chase(ex41.q1, "bag-set")
        misses_before = cache.misses
        session.set_dependencies(
            DependencySet([TGD([Atom("p", [X, Y])], [Atom("r", [X])])])
        )
        session.chase(ex41.q1, "bag-set")
        assert cache.misses > misses_before


class TestEvaluationPlanPath:
    def test_explicit_plan_matches_default(self):
        instance = DatabaseInstance.from_dict(
            {"p": [(1, 2), (2, 3), (1, 3)], "q": [(3,), (2,)]}
        )
        atoms = [Atom("p", [X, Y]), Atom("q", [Y])]
        default = list(iter_satisfying_assignments(atoms, instance))
        planned = list(
            iter_satisfying_assignments(atoms, instance, plan=MatchPlan(atoms))
        )
        assert planned == default
        assert default  # the fixture joins to something

    def test_repeated_variable_join(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 1), (1, 2), (2, 2)]})
        atoms = [Atom("p", [X, X])]
        rows = list(iter_satisfying_assignments(atoms, instance))
        assert rows == [{X: 1}, {X: 2}]

    def test_constant_positions_filter(self):
        instance = DatabaseInstance.from_dict({"p": [(1, 2), (2, 2), (1, 3)]})
        atoms = [Atom("p", [Constant(1), Y])]
        rows = list(iter_satisfying_assignments(atoms, instance))
        assert rows == [{Y: 2}, {Y: 3}]
