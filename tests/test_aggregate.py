"""Unit tests for repro.core.aggregate (AggregateQuery, AggregateTerm)."""

from __future__ import annotations

import pytest

from repro.core.aggregate import AggregateFunction, AggregateQuery, AggregateTerm
from repro.core.atoms import Atom
from repro.core.terms import Variable
from repro.exceptions import QueryError


def make_aggregate(function="sum") -> AggregateQuery:
    return AggregateQuery(
        "Q",
        ["X"],
        AggregateTerm(function, "Y"),
        [Atom("r", ["X", "Y"]), Atom("s", ["Y", "Z"])],
    )


class TestAggregateFunction:
    def test_from_name(self):
        assert AggregateFunction.from_name("SUM") is AggregateFunction.SUM
        assert AggregateFunction.from_name("count(*)") is AggregateFunction.COUNT_STAR
        with pytest.raises(QueryError):
            AggregateFunction.from_name("median")

    def test_duplicate_sensitivity(self):
        assert AggregateFunction.SUM.is_duplicate_sensitive
        assert AggregateFunction.COUNT.is_duplicate_sensitive
        assert AggregateFunction.COUNT_STAR.is_duplicate_sensitive
        assert not AggregateFunction.MAX.is_duplicate_sensitive
        assert not AggregateFunction.MIN.is_duplicate_sensitive


class TestAggregateTerm:
    def test_requires_argument(self):
        with pytest.raises(QueryError):
            AggregateTerm("sum")

    def test_count_star_takes_no_argument(self):
        with pytest.raises(QueryError):
            AggregateTerm("count(*)", "Y")
        term = AggregateTerm("count(*)")
        assert term.argument is None
        assert str(term) == "count(*)"

    def test_argument_must_be_variable(self):
        with pytest.raises(QueryError):
            AggregateTerm("sum", 5)

    def test_str(self):
        assert str(AggregateTerm("max", "Y")) == "max(Y)"


class TestAggregateQuery:
    def test_safety_of_grouping_variable(self):
        with pytest.raises(QueryError):
            AggregateQuery("Q", ["W"], AggregateTerm("sum", "Y"), [Atom("r", ["X", "Y"])])

    def test_safety_of_aggregated_variable(self):
        with pytest.raises(QueryError):
            AggregateQuery("Q", ["X"], AggregateTerm("sum", "W"), [Atom("r", ["X", "Y"])])

    def test_aggregated_variable_not_in_grouping(self):
        with pytest.raises(QueryError):
            AggregateQuery("Q", ["Y"], AggregateTerm("sum", "Y"), [Atom("r", ["X", "Y"])])

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            AggregateQuery("Q", [], AggregateTerm("count(*)"), [])

    def test_core_of_unary_aggregate(self):
        query = make_aggregate()
        core = query.core()
        assert core.head_terms == (Variable("X"), Variable("Y"))
        assert core.body == query.body

    def test_core_of_count_star(self):
        query = AggregateQuery(
            "Q", ["X"], AggregateTerm("count(*)"), [Atom("r", ["X", "Y"])]
        )
        assert query.core().head_terms == (Variable("X"),)

    def test_with_core_reattaches_head(self):
        query = make_aggregate()
        shorter_core = query.core().with_body([Atom("r", ["X", "Y"])])
        rebuilt = query.with_core(shorter_core)
        assert rebuilt.aggregate == query.aggregate
        assert rebuilt.grouping_terms == query.grouping_terms
        assert rebuilt.body == (Atom("r", ["X", "Y"]),)

    def test_compatibility(self):
        assert make_aggregate().is_compatible_with(make_aggregate())
        assert not make_aggregate("sum").is_compatible_with(make_aggregate("count"))

    def test_str(self):
        assert str(make_aggregate()) == "Q(X, sum(Y)) :- r(X, Y), s(Y, Z)"
