"""Tests for repro.schema: relation schemas, database schemas, fds, and keys."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.schema import (
    DatabaseSchema,
    FunctionalDependency,
    RelationSchema,
    attribute_closure,
    candidate_keys,
    implies,
    is_key,
    is_superkey,
    key_positions,
)


class TestRelationSchema:
    def test_default_attribute_names(self):
        relation = RelationSchema("p", 3)
        assert relation.attribute_names == ("a1", "a2", "a3")

    def test_explicit_attribute_names(self):
        relation = RelationSchema("p", 2, ("x", "y"))
        assert relation.attribute_position("y") == 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("p", 2, ("x",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("p", 2, ("x", "x"))

    def test_nonpositive_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("p", 0)

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("p", 2).attribute_position("zzz")

    def test_as_set_valued(self):
        relation = RelationSchema("p", 2)
        assert not relation.set_valued
        assert relation.as_set_valued().set_valued


class TestDatabaseSchema:
    def test_from_arities(self):
        schema = DatabaseSchema.from_arities({"p": 2, "r": 1}, set_valued=["p"])
        assert schema.arity("p") == 2
        assert "r" in schema and "z" not in schema
        assert schema.set_valued_relations() == {"p"}
        assert len(schema) == 2

    def test_unknown_relation(self):
        schema = DatabaseSchema.from_arities({"p": 2})
        with pytest.raises(SchemaError):
            schema.relation("q")

    def test_mark_set_valued_returns_copy(self):
        schema = DatabaseSchema.from_arities({"p": 2, "r": 1})
        marked = schema.mark_set_valued("r")
        assert marked.set_valued_relations() == {"r"}
        assert schema.set_valued_relations() == set()

    def test_validate_atom_arity(self):
        schema = DatabaseSchema.from_arities({"p": 2})
        schema.validate_atom_arity("p", 2)
        with pytest.raises(SchemaError):
            schema.validate_atom_arity("p", 3)


class TestFunctionalDependencies:
    relation = RelationSchema("r", 4, ("a", "b", "c", "d"))
    fds = [
        FunctionalDependency("r", ["a"], ["b"]),
        FunctionalDependency("r", ["b"], ["c"]),
        FunctionalDependency("r", ["a", "d"], ["c"]),
    ]

    def test_fd_validation(self):
        with pytest.raises(SchemaError):
            FunctionalDependency("r", [], ["a"])
        with pytest.raises(SchemaError):
            FunctionalDependency("r", ["a"], [])

    def test_trivial_fd(self):
        assert FunctionalDependency("r", ["a", "b"], ["a"]).is_trivial()
        assert not FunctionalDependency("r", ["a"], ["b"]).is_trivial()

    def test_attribute_closure(self):
        closure = attribute_closure(["a"], self.fds)
        assert closure == {"a", "b", "c"}

    def test_implies_transitivity(self):
        assert implies(self.fds, FunctionalDependency("r", ["a"], ["c"]))
        assert not implies(self.fds, FunctionalDependency("r", ["a"], ["d"]))

    def test_implies_ignores_other_relations(self):
        foreign = FunctionalDependency("s", ["a"], ["d"])
        assert not implies([*self.fds, foreign], FunctionalDependency("r", ["a"], ["d"]))

    def test_superkey_and_key(self):
        assert is_superkey(self.relation, ["a", "d"], self.fds)
        assert not is_superkey(self.relation, ["a"], self.fds)
        assert is_key(self.relation, ["a", "d"], self.fds)
        assert not is_key(self.relation, ["a", "b", "d"], self.fds)

    def test_full_attribute_set_is_superkey(self):
        assert is_superkey(self.relation, ["a", "b", "c", "d"], [])

    def test_candidate_keys(self):
        keys = candidate_keys(self.relation, self.fds)
        assert frozenset({"a", "d"}) in keys
        # No candidate key is a superset of another.
        for key in keys:
            for other in keys:
                assert key == other or not key < other

    def test_key_positions(self):
        assert key_positions(self.relation, ["d", "a"]) == (0, 3)
        with pytest.raises(SchemaError):
            key_positions(self.relation, ["zz"])
