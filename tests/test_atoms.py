"""Unit tests for repro.core.atoms."""

from __future__ import annotations

import pytest

from repro.core.atoms import (
    Atom,
    EqualityAtom,
    atoms_constants,
    atoms_variables,
    substitute_atoms,
)
from repro.core.terms import Constant, Variable


class TestAtom:
    def test_term_coercion(self):
        atom = Atom("p", ["X", "a", 3])
        assert atom.terms == (Variable("X"), Constant("a"), Constant(3))

    def test_arity(self):
        assert Atom("p", ["X", "Y"]).arity == 2

    def test_equality_and_hash(self):
        assert Atom("p", ["X", 1]) == Atom("p", ["X", 1])
        assert Atom("p", ["X", 1]) != Atom("p", ["Y", 1])
        assert Atom("p", ["X"]) != Atom("q", ["X"])
        assert len({Atom("p", ["X"]), Atom("p", ["X"])}) == 1

    def test_variables_and_constants(self):
        atom = Atom("p", ["X", 1, "X", "b"])
        assert list(atom.variables()) == [Variable("X"), Variable("X")]
        assert atom.variable_set() == {Variable("X")}
        assert list(atom.constants()) == [Constant(1), Constant("b")]

    def test_substitute(self):
        atom = Atom("p", ["X", "Y"])
        replaced = atom.substitute({Variable("X"): Constant(9)})
        assert replaced == Atom("p", [Constant(9), "Y"])
        # Original unchanged (immutability).
        assert atom == Atom("p", ["X", "Y"])

    def test_is_ground_and_to_tuple(self):
        assert Atom("p", [1, "a"]).is_ground()
        assert Atom("p", [1, "a"]).to_tuple() == (1, "a")
        assert not Atom("p", ["X", 1]).is_ground()
        with pytest.raises(ValueError):
            Atom("p", ["X"]).to_tuple()

    def test_str(self):
        assert str(Atom("p", ["X", 1])) == "p(X, 1)"


class TestEqualityAtom:
    def test_construction_and_equality(self):
        eq = EqualityAtom("X", "Y")
        assert eq.left == Variable("X") and eq.right == Variable("Y")
        assert eq == EqualityAtom("X", "Y")

    def test_substitute(self):
        eq = EqualityAtom("X", "Y").substitute({Variable("X"): Variable("Z")})
        assert eq == EqualityAtom("Z", "Y")

    def test_is_trivial(self):
        assert EqualityAtom("X", "X").is_trivial()
        assert not EqualityAtom("X", "Y").is_trivial()

    def test_variables(self):
        assert list(EqualityAtom("X", 3).variables()) == [Variable("X")]

    def test_str(self):
        assert str(EqualityAtom("X", "Y")) == "X = Y"


class TestHelpers:
    def test_atoms_variables_order_and_dedup(self):
        atoms = [Atom("p", ["X", "Y"]), Atom("q", ["Y", "Z"])]
        assert atoms_variables(atoms) == [Variable("X"), Variable("Y"), Variable("Z")]

    def test_atoms_constants(self):
        atoms = [Atom("p", [1, "X"]), Atom("q", ["a", 1])]
        assert atoms_constants(atoms) == [Constant(1), Constant("a")]

    def test_substitute_atoms(self):
        atoms = [Atom("p", ["X"]), Atom("q", ["X", "Y"])]
        result = substitute_atoms(atoms, {Variable("X"): Variable("W")})
        assert result == (Atom("p", ["W"]), Atom("q", ["W", "Y"]))
