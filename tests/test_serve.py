"""Tests for the ``repro serve`` daemon (src/repro/serve/server.py, client.py).

The fixtures run the real asyncio server in-process on an event-loop thread
(``ReproServer.start_in_thread`` — the same code path as the CLI daemon,
minus the process boundary) and drive it through the real TCP client, so
what is tested is the full wire round trip: framing, dispatch, executor
offload, error mapping, and the warm shared state that is the daemon's
reason to exist.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import types

import pytest

from repro.datalog import parse_dependencies, render_query
from repro.serve import ReproClient, ReproServer, ServerError
from repro.session import Session

#: A cyclic dependency set: the chase runs to its step budget and fails.
CYCLIC = "p(X,Y) -> p(Y,Z)"


@pytest.fixture()
def server41(ex41):
    """A running server over Example 4.1's Σ, plus a direct twin Session."""
    server = ReproServer(Session(dependencies=ex41.dependencies), port=0)
    with server.start_in_thread() as handle:
        yield handle


@pytest.fixture()
def client(server41):
    with ReproClient(server41.host, server41.port) as client:
        yield client


def _q(query) -> str:
    return render_query(query)


# --------------------------------------------------------------------------- #
class TestEndpoints:
    def test_health(self, client, ex41):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["semantics"]) == {"set", "bag", "bag-set"}
        assert health["dependencies"] == len(ex41.dependencies)
        assert health["store"] is False

    def test_decide_matches_direct_session(self, client, ex41):
        """Verdicts over the wire equal direct Session calls (Example 4.1)."""
        direct = Session(dependencies=ex41.dependencies)
        for semantics in ("set", "bag", "bag-set"):
            served = client.decide(_q(ex41.q1), _q(ex41.q4), semantics)
            expected = direct.decide(ex41.q1, ex41.q4, semantics)
            assert served["equivalent"] == expected.equivalent, semantics
        # The paper's headline: Q1 ≡Σ,S Q4 but not under bag / bag-set.
        assert client.decide(_q(ex41.q1), _q(ex41.q4), "set")["equivalent"]
        assert not client.decide(_q(ex41.q1), _q(ex41.q4), "bag")["equivalent"]

    def test_decide_default_semantics(self, client, ex41):
        served = client.decide(_q(ex41.q1), _q(ex41.q4))
        assert served["semantics"] == "bag-set"

    def test_reformulate(self, client, ex41):
        direct = Session(dependencies=ex41.dependencies)
        served = client.reformulate(_q(ex41.q4), "bag")
        expected = direct.reformulate(
            ex41.q4, "bag", check_sigma_minimality=False
        )
        assert served["universal_plan"] == render_query(expected.universal_plan)
        assert sorted(served["reformulations"]) == sorted(
            render_query(q) for q in expected.reformulations
        )

    def test_reformulate_minimal_only(self, client, ex41):
        served = client.reformulate(_q(ex41.q4), "bag", minimal_only=True)
        assert "minimal_reformulations" in served
        assert set(served["minimal_reformulations"]) <= set(served["reformulations"])

    def test_batch(self, client, ex41):
        report = client.batch(
            [[_q(ex41.q1), _q(ex41.q4)], [_q(ex41.q1), _q(ex41.q1)]], "set"
        )
        assert report["ok_count"] == 2 and report["error_count"] == 0
        assert [item["equivalent"] for item in report["items"]] == [True, True]

    def test_batch_isolates_bad_items(self, client, ex41):
        report = client.batch([[_q(ex41.q1), "broken(("], [_q(ex41.q1), _q(ex41.q1)]])
        assert report["ok_count"] == 1 and report["error_count"] == 1
        assert report["items"][0]["error"]["code"] == "parse-error"
        assert report["items"][1]["equivalent"] is True

    def test_stats_shape(self, client):
        stats = client.stats()
        for section in ("chase_cache", "plan_cache", "intern", "profile", "server"):
            assert section in stats, section
        assert stats["server"]["connections_accepted"] >= 1

    def test_request_ids_echoed(self, client):
        response = client.request("health", check=False)
        assert response["id"] == client._next_id


# --------------------------------------------------------------------------- #
class TestWarmState:
    def test_second_identical_request_is_cache_served(self, client, ex41):
        """The tentpole's point: request two is answered from warm state.

        After the first decide, the second identical decide increases the
        chase-cache hit counter by exactly its two lookups and performs no
        new chase (the cold-run counter on the profile stays put).
        """
        client.decide(_q(ex41.q1), _q(ex41.q4), "bag")
        before = client.stats()
        client.decide(_q(ex41.q1), _q(ex41.q4), "bag")
        after = client.stats()
        assert (
            after["chase_cache"]["hits"] == before["chase_cache"]["hits"] + 2
        )
        assert after["chase_cache"]["misses"] == before["chase_cache"]["misses"]
        assert after["profile"]["runs"] == before["profile"]["runs"]

    def test_warm_state_shared_across_connections(self, server41, ex41):
        """A second client benefits from the first client's chases."""
        with ReproClient(server41.host, server41.port) as first:
            first.decide(_q(ex41.q1), _q(ex41.q4), "bag")
            runs_after_first = first.stats()["profile"]["runs"]
        with ReproClient(server41.host, server41.port) as second:
            second.decide(_q(ex41.q1), _q(ex41.q4), "bag")
            stats = second.stats()
        assert stats["profile"]["runs"] == runs_after_first  # no new cold chase
        assert stats["server"]["connections_accepted"] >= 2

    def test_concurrent_clients_agree_with_direct_session(self, server41, ex41):
        """Many threads hammering one daemon all get the direct-call verdicts."""
        direct = Session(dependencies=ex41.dependencies)
        cases = [
            (_q(ex41.q1), _q(ex41.q4), "set", direct.decide(ex41.q1, ex41.q4, "set").equivalent),
            (_q(ex41.q1), _q(ex41.q4), "bag", direct.decide(ex41.q1, ex41.q4, "bag").equivalent),
            (_q(ex41.q2), _q(ex41.q4), "bag-set", direct.decide(ex41.q2, ex41.q4, "bag-set").equivalent),
            (_q(ex41.q3), _q(ex41.q4), "bag", direct.decide(ex41.q3, ex41.q4, "bag").equivalent),
        ]
        failures: list[str] = []

        def hammer(worker: int) -> None:
            try:
                with ReproClient(server41.host, server41.port) as client:
                    for repeat in range(3):
                        for query, other, semantics, expected in cases:
                            got = client.decide(query, other, semantics)["equivalent"]
                            if got != expected:
                                failures.append(
                                    f"worker {worker} repeat {repeat}: "
                                    f"{semantics} got {got}, want {expected}"
                                )
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(f"worker {worker}: {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures


# --------------------------------------------------------------------------- #
class TestErrorPaths:
    def test_malformed_json(self, server41):
        with socket.create_connection((server41.host, server41.port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "parse-error"

    def test_non_object_request(self, server41):
        with socket.create_connection((server41.host, server41.port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"[1, 2, 3]\n")
            stream.flush()
            response = json.loads(stream.readline())
        assert response["error"]["code"] == "invalid-request"

    def test_unknown_op_echoes_id(self, client):
        response = client.request("frobnicate", check=False)
        assert response["error"]["code"] == "unknown-op"
        assert response["id"] == client._next_id

    def test_missing_params(self, client):
        response = client.request("decide", {"query": "Q(X) :- p(X)"}, check=False)
        assert response["error"]["code"] == "invalid-request"
        assert "other" in response["error"]["message"]

    def test_unparseable_query(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.decide("garbage((", "Q(X) :- p(X)")
        assert excinfo.value.code == "parse-error"

    def test_unknown_semantics(self, client, ex41):
        response = client.request(
            "decide",
            {"query": _q(ex41.q1), "other": _q(ex41.q4), "semantics": "probabilistic"},
            check=False,
        )
        assert response["error"]["code"] == "unknown-semantics"

    def test_bad_max_steps(self, client, ex41):
        response = client.request(
            "decide",
            {"query": _q(ex41.q1), "other": _q(ex41.q4), "max_steps": "soon"},
            check=False,
        )
        assert response["error"]["code"] == "invalid-request"

    def test_chase_failed_is_structured(self, ex41):
        """A budget-exhausting chase answers chase-failed and keeps serving."""
        session = Session(
            dependencies=parse_dependencies(CYCLIC), max_steps=20
        )
        server = ReproServer(session, port=0)
        with server.start_in_thread() as handle:
            with ReproClient(handle.host, handle.port) as client:
                response = client.request(
                    "decide",
                    {"query": "Q(X) :- p(X,Y)", "other": "Q(X) :- p(X,Z)"},
                    check=False,
                )
                assert response["error"]["code"] == "chase-failed"
                assert response["error"]["steps_taken"] >= 20
                # The failure did not take the server down.
                assert client.health()["status"] == "ok"

    def test_timeout_is_structured_and_non_fatal(self, ex41):
        """A request over budget gets a timeout error; the server survives."""
        session = Session(dependencies=ex41.dependencies)
        server = ReproServer(session, port=0, timeout=0.05)
        # A deterministic slow op: sleeping releases the GIL, so the event
        # loop reliably fires the timeout while the "engine" is busy.
        verdict = types.SimpleNamespace(
            semantics="set", chased_left=ex41.q1, chased_right=ex41.q1
        )

        def slow_decide(*args, **kwargs):
            time.sleep(0.5)
            return verdict

        session.decide = slow_decide  # type: ignore[method-assign]
        with server.start_in_thread() as handle:
            with ReproClient(handle.host, handle.port) as client:
                response = client.request(
                    "decide",
                    {"query": "Q(X) :- p(X,Y)", "other": "Q(X) :- p(X,Y)"},
                    check=False,
                )
                assert response["error"]["code"] == "timeout"
                # stats/health run on the loop, not the (busy) engine thread.
                assert client.health()["status"] == "ok"

    def test_oversized_request_refused_and_connection_closed(self, ex41):
        server = ReproServer(
            Session(dependencies=ex41.dependencies), port=0, max_request_bytes=256
        )
        with server.start_in_thread() as handle:
            with socket.create_connection((handle.host, handle.port), timeout=10) as sock:
                stream = sock.makefile("rwb")
                stream.write(b'{"op": "health", "padding": "' + b"x" * 1024 + b'"}\n')
                stream.flush()
                response = json.loads(stream.readline())
                assert response["error"]["code"] == "request-too-large"
                # The server closed this connection (the frame boundary is
                # unrecoverable) but keeps accepting new ones.
                assert stream.readline() == b""
            with ReproClient(handle.host, handle.port) as client:
                assert client.health()["status"] == "ok"

    def test_blank_lines_are_keepalives(self, server41):
        with socket.create_connection((server41.host, server41.port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"\n\n" + json.dumps({"op": "health"}).encode() + b"\n")
            stream.flush()
            response = json.loads(stream.readline())
        assert response["ok"] is True


# --------------------------------------------------------------------------- #
class TestAnalyzeOp:
    """The ``analyze`` op: the static analyzer over the wire."""

    def test_analyze_session_sigma(self, client, ex41):
        result = client.request("analyze", {})
        assert result["ok"] is True
        assert "Σ certified" in result["summary"]
        codes = {d["code"] for d in result["diagnostics"]}
        assert "sigma-certified" in codes
        assert result["certificate"] is not None

    def test_analyze_explicit_cyclic_sigma(self, client):
        result = client.request("analyze", {"dependencies": CYCLIC})
        assert result["ok"] is False
        assert result["witness"] is not None
        codes = {d["code"] for d in result["diagnostics"]}
        assert "sigma-not-weakly-acyclic" in codes

    def test_analyze_strict_answers_precheck_failed(self, client):
        response = client.request(
            "analyze", {"dependencies": CYCLIC, "strict": True}, check=False
        )
        assert response["error"]["code"] == "precheck-failed"
        # The structured report rides along for programmatic clients.
        assert response["error"]["report"]["witness"] is not None
        # The refusal did not take the server down.
        assert client.health()["status"] == "ok"

    def test_analyze_queries_feed_the_lint_passes(self, client):
        result = client.request(
            "analyze", {"queries": ["Q(X) :- r0(X, X), zz(Y, Y)"]}
        )
        codes = {d["code"] for d in result["diagnostics"]}
        assert "query-cross-product" in codes

    def test_analyze_rejects_non_list_queries(self, client):
        response = client.request(
            "analyze", {"queries": "Q(X) :- p(X)"}, check=False
        )
        assert response["error"]["code"] == "invalid-request"

    def test_analyze_unparseable_sigma(self, client):
        response = client.request(
            "analyze", {"dependencies": "not a rule (("}, check=False
        )
        assert response["error"]["code"] == "parse-error"
