"""Unit tests for repro.core.query (ConjunctiveQuery)."""

from __future__ import annotations

import pytest

from repro.core.atoms import Atom
from repro.core.query import ConjunctiveQuery, cq
from repro.core.terms import Constant, Variable
from repro.exceptions import QueryError


def make_query() -> ConjunctiveQuery:
    return cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("s", ["X", "Z"]))


class TestConstructionAndSafety:
    def test_basic_construction(self):
        query = make_query()
        assert query.head_predicate == "Q"
        assert query.head_terms == (Variable("X"),)
        assert len(query.body) == 2

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery("Q", ["X"], [])

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            cq("Q", ["W"], Atom("p", ["X", "Y"]))

    def test_constant_in_head_allowed(self):
        query = cq("Q", ["X", 7], Atom("p", ["X", "Y"]))
        assert query.head_terms[1] == Constant(7)


class TestAccessors:
    def test_head_and_body_variables(self):
        query = make_query()
        assert query.head_variables() == [Variable("X")]
        assert query.body_variables() == [Variable("X"), Variable("Y"), Variable("Z")]
        assert query.existential_variables() == [Variable("Y"), Variable("Z")]

    def test_all_variables_and_constants(self):
        query = cq("Q", ["X"], Atom("p", ["X", 1]), Atom("r", ["a"]))
        assert query.all_variables() == [Variable("X")]
        assert query.constants() == [Constant(1), Constant("a")]

    def test_predicates_and_counts(self):
        query = cq("Q", ["X"], Atom("p", ["X"]), Atom("p", ["X"]), Atom("r", ["X"]))
        assert query.predicates() == {"p", "r"}
        assert query.predicate_counts() == {"p": 2, "r": 1}

    def test_head_atom(self):
        assert make_query().head_atom == Atom("Q", ["X"])


class TestTransformations:
    def test_canonical_representation_drops_duplicates(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["X", "Y"]))
        assert len(query.canonical_representation().body) == 1

    def test_canonical_representation_keeps_distinct_atoms(self):
        query = cq("Q", ["X"], Atom("p", ["X", "Y"]), Atom("p", ["X", "Z"]))
        assert len(query.canonical_representation().body) == 2

    def test_drop_duplicates_for_selected_predicates_only(self):
        query = cq(
            "Q",
            ["X"],
            Atom("p", ["X"]),
            Atom("p", ["X"]),
            Atom("s", ["X"]),
            Atom("s", ["X"]),
        )
        reduced = query.drop_duplicates_for(["s"])
        assert reduced.predicate_counts() == {"p": 2, "s": 1}

    def test_substitute(self):
        query = make_query().substitute({Variable("Y"): Constant(3)})
        assert Atom("p", ["X", 3]) in query.body

    def test_rename_variables(self):
        renamed = make_query().rename_variables({Variable("X"): Variable("A")})
        assert renamed.head_terms == (Variable("A"),)

    def test_freshen_produces_disjoint_copy(self):
        query = make_query()
        fresh, renaming = query.freshen()
        assert set(fresh.all_variables()).isdisjoint(query.all_variables())
        assert set(renaming) == set(query.all_variables())

    def test_with_body_and_add_atoms(self):
        query = make_query()
        extended = query.add_atoms([Atom("r", ["X"])])
        assert len(extended.body) == 3
        shrunk = query.with_body(query.body[:1])
        assert len(shrunk.body) == 1

    def test_drop_atom_at(self):
        query = make_query()
        dropped = query.drop_atom_at(1)
        assert dropped.body == (Atom("p", ["X", "Y"]),)
        with pytest.raises(QueryError):
            query.drop_atom_at(5)


class TestNormalForm:
    def test_normal_form_invariant_under_renaming(self):
        query = make_query()
        renamed = query.rename_variables(
            {Variable("X"): Variable("A"), Variable("Y"): Variable("B"), Variable("Z"): Variable("C")}
        )
        assert query.normal_form() == renamed.normal_form()
        assert query.structural_key() == renamed.structural_key()

    def test_normal_form_is_idempotent(self):
        query = cq("Q", ["X"], Atom("s", ["X", "Z"]), Atom("p", ["X", "Y"]))
        assert query.normal_form().normal_form() == query.normal_form()

    def test_distinct_queries_have_distinct_keys(self):
        q1 = cq("Q", ["X"], Atom("p", ["X", "Y"]))
        q2 = cq("Q", ["X"], Atom("p", ["X", "X"]))
        assert q1.structural_key() != q2.structural_key()

    def test_str_round_trip_shape(self):
        assert str(make_query()) == "Q(X) :- p(X, Y), s(X, Z)"
