"""Tests for the Σ-aware equivalence tests (Theorems 2.2, 6.1, 6.2, 6.3,
Propositions 6.1/6.2) and the decision façade."""

from __future__ import annotations

import pytest

from repro.datalog import parse_aggregate_query, parse_dependencies, parse_query
from repro.equivalence import (
    contained_under_dependencies_set,
    decide_all,
    decide_equivalence,
    equivalent_aggregate_queries,
    equivalent_aggregate_queries_under_dependencies,
    equivalent_under_dependencies,
    equivalent_under_dependencies_bag,
    equivalent_under_dependencies_bag_set,
    equivalent_under_dependencies_set,
)
from repro.semantics import Semantics


class TestSetEquivalenceUnderDependencies:
    def test_example_4_1_q1_equiv_q4_set(self, ex41):
        assert equivalent_under_dependencies_set(ex41.q1, ex41.q4, ex41.dependencies)

    def test_all_example_4_1_queries_set_equivalent(self, ex41):
        for query in (ex41.q2, ex41.q3):
            assert equivalent_under_dependencies_set(query, ex41.q4, ex41.dependencies)

    def test_without_dependencies_not_equivalent(self, ex41):
        assert not equivalent_under_dependencies_set(ex41.q1, ex41.q4, [])

    def test_containment_under_dependencies(self, ex41):
        assert contained_under_dependencies_set(ex41.q4, ex41.q1, ex41.dependencies)
        assert contained_under_dependencies_set(ex41.q1, ex41.q4, ex41.dependencies)

    def test_inequivalent_queries_stay_inequivalent(self, ex41):
        other = parse_query("Q(X) :- r(X)")
        assert not equivalent_under_dependencies_set(other, ex41.q4, ex41.dependencies)


class TestBagEquivalenceUnderDependencies:
    def test_example_4_1_headline_result(self, ex41):
        # Q1 ≡Σ,S Q4 (above) but NOT ≡Σ,B and NOT ≡Σ,BS.
        assert not equivalent_under_dependencies_bag(ex41.q1, ex41.q4, ex41.dependencies)
        assert not equivalent_under_dependencies_bag_set(ex41.q1, ex41.q4, ex41.dependencies)

    def test_q3_bag_equivalent_to_q4(self, ex41):
        assert equivalent_under_dependencies_bag(ex41.q3, ex41.q4, ex41.dependencies)

    def test_q2_bag_set_but_not_bag_equivalent_to_q4(self, ex41):
        assert equivalent_under_dependencies_bag_set(ex41.q2, ex41.q4, ex41.dependencies)
        assert not equivalent_under_dependencies_bag(ex41.q2, ex41.q4, ex41.dependencies)

    def test_example_4_9_q5_bag_equivalent_to_q3(self, ex41):
        # The duplicate s-subgoal is harmless because S is set enforced.
        assert equivalent_under_dependencies_bag(ex41.q5, ex41.q3, ex41.dependencies)
        assert equivalent_under_dependencies_bag(ex41.q5, ex41.q4, ex41.dependencies)

    def test_q7_not_bag_equivalent_to_q8(self, ex41):
        # Duplicate r-subgoal over a relation that may be a bag.
        assert not equivalent_under_dependencies_bag(ex41.q7, ex41.q8, ex41.dependencies)
        assert equivalent_under_dependencies_bag_set(ex41.q7, ex41.q8, ex41.dependencies)

    def test_proposition_6_1_implications(self, ex41):
        pairs = [
            (ex41.q1, ex41.q4),
            (ex41.q2, ex41.q4),
            (ex41.q3, ex41.q4),
            (ex41.q5, ex41.q3),
            (ex41.q7, ex41.q8),
        ]
        for q1, q2 in pairs:
            bag = equivalent_under_dependencies_bag(q1, q2, ex41.dependencies)
            bag_set = equivalent_under_dependencies_bag_set(q1, q2, ex41.dependencies)
            set_eq = equivalent_under_dependencies_set(q1, q2, ex41.dependencies)
            assert not bag or bag_set
            assert not bag_set or set_eq

    def test_generic_dispatch(self, ex41):
        assert equivalent_under_dependencies(
            ex41.q3, ex41.q4, ex41.dependencies, "bag"
        )
        assert not equivalent_under_dependencies(
            ex41.q1, ex41.q4, ex41.dependencies, Semantics.BAG
        )

    def test_example_4_6_modified_chase_result_not_equivalent(self, ex46):
        # Example 4.6: Q' (the single extra t-subgoal) is NOT equivalent to Q
        # under Σ for bag or bag-set semantics; Q'' (Example 4.8) IS.
        assert not equivalent_under_dependencies_bag_set(
            ex46.query, ex46.query_modified_chase, ex46.dependencies
        )
        assert not equivalent_under_dependencies_bag(
            ex46.query, ex46.query_modified_chase, ex46.dependencies
        )
        assert equivalent_under_dependencies_bag_set(
            ex46.query, ex46.query_traditional_chase, ex46.dependencies
        )
        assert equivalent_under_dependencies_bag(
            ex46.query, ex46.query_traditional_chase, ex46.dependencies
        )

    def test_example_e_1_chase_result_not_bag_equivalent(self, exE1):
        assert not equivalent_under_dependencies_bag(
            exE1.query, exE1.chased_query, exE1.dependencies
        )
        assert equivalent_under_dependencies_bag_set(
            exE1.query, exE1.chased_query, exE1.dependencies
        )

    def test_example_e_2_chase_result_not_bag_set_equivalent(self, exE2):
        assert not equivalent_under_dependencies_bag_set(
            exE2.query, exE2.chased_query, exE2.dependencies
        )
        assert equivalent_under_dependencies_set(
            exE2.query, exE2.chased_query, exE2.dependencies
        )


class TestDecisionFacade:
    def test_verdict_carries_evidence(self, ex41):
        verdict = decide_equivalence(ex41.q1, ex41.q4, ex41.dependencies, "bag")
        assert not verdict
        assert verdict.semantics is Semantics.BAG
        assert verdict.chased_left.body and verdict.chased_right.body
        assert "≢" in str(verdict)

    def test_decide_all_implication_chain(self, ex41):
        verdicts = decide_all(ex41.q2, ex41.q4, ex41.dependencies)
        assert not verdicts[Semantics.BAG].equivalent
        assert verdicts[Semantics.BAG_SET].equivalent
        assert verdicts[Semantics.SET].equivalent

    def test_no_dependencies_defaults(self):
        q1 = parse_query("Q(X) :- p(X,Y)")
        q2 = parse_query("Q(A) :- p(A,B)")
        assert decide_equivalence(q1, q2).equivalent

    def test_string_semantics_accepted(self, ex41):
        assert decide_equivalence(ex41.q3, ex41.q4, ex41.dependencies, "bag").equivalent


class TestAggregateEquivalence:
    sigma = parse_dependencies(
        """
        p(X,Y) -> t(X,Y,W)
        t(X,Y,Z) & t(X,Y,W) -> Z = W
        """,
        set_valued=["t"],
    )

    def test_dependency_free_sum_requires_bag_set_equivalence(self):
        q1 = parse_aggregate_query("Q(X, sum(Y)) :- r(X,Y)")
        q2 = parse_aggregate_query("Q(X, sum(Y)) :- r(X,Y), r(X,Y)")
        q3 = parse_aggregate_query("Q(X, sum(Y)) :- r(X,Y), r(X,Z)")
        assert equivalent_aggregate_queries(q1, q2)  # duplicate atom collapses
        assert not equivalent_aggregate_queries(q1, q3)

    def test_dependency_free_max_requires_only_set_equivalence(self):
        q1 = parse_aggregate_query("Q(X, max(Y)) :- r(X,Y)")
        q3 = parse_aggregate_query("Q(X, max(Y)) :- r(X,Y), r(X,Z)")
        assert equivalent_aggregate_queries(q1, q3)

    def test_incompatible_queries_never_equivalent(self):
        q1 = parse_aggregate_query("Q(X, sum(Y)) :- r(X,Y)")
        q2 = parse_aggregate_query("Q(X, count(Y)) :- r(X,Y)")
        assert not equivalent_aggregate_queries(q1, q2)
        assert not equivalent_aggregate_queries_under_dependencies(q1, q2, self.sigma)

    def test_sum_queries_under_dependencies(self):
        # The t-lookup is forced by the tgd and pinned by the key, so adding it
        # preserves sum-equivalence (bag-set equivalence of cores).
        q1 = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y)")
        q2 = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y), t(X,Y,W)")
        assert equivalent_aggregate_queries_under_dependencies(q1, q2, self.sigma)
        assert not equivalent_aggregate_queries(q1, q2)

    def test_max_queries_under_dependencies_example_4_1(self, ex41):
        q_max_1 = parse_aggregate_query("Q(X, max(Y)) :- p(X,Y)")
        q_max_2 = parse_aggregate_query(
            "Q(X, max(Y)) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)"
        )
        assert equivalent_aggregate_queries_under_dependencies(
            q_max_1, q_max_2, ex41.dependencies
        )

    def test_count_queries_under_dependencies_example_4_1(self, ex41):
        q_count_1 = parse_aggregate_query("Q(X, count(Y)) :- p(X,Y)")
        q_count_2 = parse_aggregate_query(
            "Q(X, count(Y)) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)"
        )
        # The core equivalence fails under bag-set semantics (u-subgoal), so
        # the count-queries are not equivalent — unlike the max-queries above.
        assert not equivalent_aggregate_queries_under_dependencies(
            q_count_1, q_count_2, ex41.dependencies
        )
        q_count_3 = parse_aggregate_query(
            "Q(X, count(Y)) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)"
        )
        assert equivalent_aggregate_queries_under_dependencies(
            q_count_1, q_count_3, ex41.dependencies
        )
