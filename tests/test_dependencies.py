"""Tests for repro.dependencies: TGD/EGD model, builders, normalisation."""

from __future__ import annotations

import pytest

from repro.core.atoms import Atom, EqualityAtom
from repro.core.terms import Variable
from repro.datalog import parse_dependency, parse_egd, parse_tgd
from repro.dependencies import (
    EGD,
    TGD,
    DependencySet,
    fd_to_egd,
    foreign_key,
    functional_dependency_egd,
    inclusion_dependency,
    key_egds,
    normalise_embedded_dependency,
)
from repro.exceptions import DependencyError
from repro.schema import FunctionalDependency, RelationSchema


class TestTGD:
    def test_variable_classification(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z) & t(Z,W)")
        assert tgd.universal_variables() == [Variable("X"), Variable("Y")]
        assert set(tgd.existential_variables()) == {Variable("Z"), Variable("W")}
        assert tgd.frontier_variables() == [Variable("X")]

    def test_full_and_inclusion_classification(self):
        assert parse_tgd("p(X,Y) -> r(X)").is_full()
        assert not parse_tgd("p(X,Y) -> r(X,Z)").is_full()
        assert parse_tgd("p(X,Y) -> r(Y,X)").is_inclusion_dependency()
        assert not parse_tgd("p(X,Y) & q(Y) -> r(X)").is_inclusion_dependency()

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            TGD([], [Atom("p", ["X"])])
        with pytest.raises(DependencyError):
            TGD([Atom("p", ["X"])], [])

    def test_predicates(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        assert tgd.predicates() == {"p", "s"}

    def test_rename_and_freshen(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        renamed = tgd.rename_variables({Variable("X"): Variable("A")})
        assert Atom("p", ["A", "Y"]) in renamed.premise
        freshened = tgd.freshen([Variable("X"), Variable("Z")])
        assert Variable("X") not in freshened.all_variables()
        assert Variable("Z") not in freshened.all_variables()

    def test_freshen_noop_when_disjoint(self):
        tgd = parse_tgd("p(X,Y) -> s(X,Z)")
        assert tgd.freshen([Variable("Q")]) is tgd


class TestEGD:
    def test_construction(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        assert isinstance(egd, EGD)
        assert len(egd.premise) == 2
        assert egd.equalities == (EqualityAtom("Y", "Z"),)

    def test_equality_variables_must_occur_in_premise(self):
        with pytest.raises(DependencyError):
            EGD([Atom("s", ["X", "Y"])], EqualityAtom("Y", "W"))

    def test_rename_and_freshen(self):
        egd = parse_egd("s(X,Y) & s(X,Z) -> Y = Z")
        renamed = egd.rename_variables({Variable("Y"): Variable("B")})
        assert renamed.equalities[0] == EqualityAtom("B", "Z")
        freshened = egd.freshen([Variable("X")])
        assert Variable("X") not in freshened.all_variables()


class TestNormalisation:
    def test_mixed_conclusion_splits(self):
        deps = normalise_embedded_dependency(
            [Atom("p", ["X", "Y"])],
            [Atom("t", ["X", "Y", "W"]), EqualityAtom("X", "Y")],
            name="mixed",
        )
        kinds = {type(d) for d in deps}
        assert kinds == {TGD, EGD}

    def test_empty_conclusion_rejected(self):
        with pytest.raises(DependencyError):
            normalise_embedded_dependency([Atom("p", ["X"])], [])

    def test_parse_dependency_normalises(self):
        deps = parse_dependency("p(X,Y) -> t(X,Y,W) & X = Y")
        assert len(deps) == 2


class TestDependencySet:
    def test_partition_and_membership(self):
        tgd = parse_tgd("p(X,Y) -> r(X)")
        egd = parse_egd("r(X) & r(Y) -> X = Y")
        sigma = DependencySet([tgd, egd], set_valued_predicates=["r"])
        assert sigma.tgds() == [tgd]
        assert sigma.egds() == [egd]
        assert sigma.is_set_valued("r") and not sigma.is_set_valued("p")
        assert sigma.predicates() == {"p", "r"}
        assert tgd in sigma
        assert len(sigma) == 2

    def test_without_and_restricted_to(self):
        tgd = parse_tgd("p(X,Y) -> r(X)")
        egd = parse_egd("r(X) & r(Y) -> X = Y")
        sigma = DependencySet([tgd, egd], set_valued_predicates=["r"])
        smaller = sigma.without(tgd)
        assert len(smaller) == 1 and smaller.set_valued_predicates == {"r"}
        restricted = sigma.restricted_to([egd])
        assert list(restricted) == [egd]

    def test_with_set_valued(self):
        sigma = DependencySet([parse_tgd("p(X,Y) -> r(X)")])
        extended = sigma.with_set_valued(["p"])
        assert extended.is_set_valued("p")
        assert not sigma.is_set_valued("p")


class TestBuilders:
    def test_functional_dependency_egd(self):
        egd = functional_dependency_egd("s", 2, [0], 1)
        assert isinstance(egd, EGD)
        assert len(egd.premise) == 2
        assert egd.premise[0].terms[0] == egd.premise[1].terms[0]
        assert egd.premise[0].terms[1] != egd.premise[1].terms[1]

    def test_functional_dependency_validation(self):
        with pytest.raises(DependencyError):
            functional_dependency_egd("s", 2, [0], 0)
        with pytest.raises(DependencyError):
            functional_dependency_egd("s", 2, [0], 5)

    def test_key_egds_one_per_nonkey_position(self):
        egds = key_egds("t", 3, [0, 1])
        assert len(egds) == 1
        egds = key_egds("t", 4, [0])
        assert len(egds) == 3

    def test_fd_to_egd(self):
        relation = RelationSchema("r", 3, ("a", "b", "c"))
        fd = FunctionalDependency("r", ["a"], ["b", "c"])
        egds = fd_to_egd(relation, fd)
        assert len(egds) == 2
        with pytest.raises(DependencyError):
            fd_to_egd(relation, FunctionalDependency("other", ["a"], ["b"]))

    def test_inclusion_dependency_shape(self):
        tgd = inclusion_dependency("orders", 3, [1], "customer", 2, [0])
        assert tgd.premise[0].predicate == "orders"
        assert tgd.conclusion[0].predicate == "customer"
        # The referencing position's variable reappears in the referenced atom.
        assert tgd.conclusion[0].terms[0] == tgd.premise[0].terms[1]
        assert len(tgd.existential_variables()) == 1

    def test_inclusion_dependency_validation(self):
        with pytest.raises(DependencyError):
            inclusion_dependency("a", 2, [0, 1], "b", 2, [0])

    def test_foreign_key_bundles_inclusion_and_keys(self):
        deps = foreign_key("orders", 3, [1], "customer", 2, [0])
        assert any(isinstance(d, TGD) for d in deps)
        assert any(isinstance(d, EGD) for d in deps)
