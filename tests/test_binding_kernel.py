"""Differential campaign: the binding-level chase kernel vs the frozen path.

The binding-level extension probe (:func:`repro.core.homomorphism.
has_match_from_binding` + :func:`repro.chase.steps.
iter_applicable_tgd_bindings`) replaced the ``find_match(..., fixed=hom)``
idiom on the tgd-applicability hot path, and the sigma-subset scans now share
one compiled-plan set per Σ through the :class:`~repro.chase.plans.
PlanCache`.  Everything the chase produces must stay *byte-identical* to the
frozen reference engines (:mod:`repro.core.reference` /
:mod:`repro.chase.reference`): the applicable-trigger enumeration — same
dicts, same key order, same trigger order — and the chase step records.

Three layers of evidence:

* a seeded ≥300-case campaign over the fuzz generator's queries and Σ,
  comparing the applicable-trigger streams dependency by dependency (raw
  and regularized) and the full chase step records per semantics;
* a replay of the committed regression corpus through the same probe-level
  comparison (the corpus cases are the shapes that broke something once);
* pinned :class:`~repro.chase.profile.ChaseProfile` counters on the paper's
  Example 4.1 / Theorem 4.2 fixtures — the binding-level layer must not just
  agree, it must actually *run* (extension probes > 0, dicts avoided where
  the conclusion extends, plan-cache hits across a sigma-subset scan).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chase.reference import (
    _iter_applicable_egd_homomorphisms as reference_egd_triggers,
    _iter_applicable_tgd_homomorphisms as reference_tgd_triggers,
    sound_chase_reference,
)
from repro.chase.sigma_subset import max_bag_sigma_subset
from repro.chase.sound_chase import sound_chase
from repro.chase.steps import (
    ChaseFailedError,
    iter_applicable_egd_homomorphisms,
    iter_applicable_tgd_homomorphisms,
)
from repro.dependencies.base import EGD, TGD
from repro.dependencies.regularize import regularize_dependencies
from repro.exceptions import ChaseNonTerminationError
from repro.fuzz import load_corpus_file
from repro.fuzz.corpus import iter_corpus_paths
from repro.fuzz.generator import generate_case
from repro.semantics import Semantics

CASES = 300
SEED = 0xB1ED
CORPUS_PATHS = list(iter_corpus_paths(Path(__file__).parent / "corpus"))
#: One semantics per campaign case, rotated so every third case exercises
#: each chase flavour (the probe-level comparison is semantics-free).
ROTATION = (Semantics.BAG, Semantics.BAG_SET, Semantics.SET)


def _trigger_stream(query, dependencies):
    """Applicable-trigger stream of the binding-level engine, order-pinned.

    Dicts compare equal regardless of insertion order, so the stream records
    ``list(hom.items())`` — any reordering of the keys (the dict is built
    from the kernel's binding trail) breaks byte-identity with the reference
    enumeration even when the mappings agree as sets.
    """
    stream = []
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            for hom in iter_applicable_tgd_homomorphisms(query, dependency):
                stream.append((dependency.name, list(hom.items())))
        elif isinstance(dependency, EGD):
            for hom, left, right in iter_applicable_egd_homomorphisms(
                query, dependency
            ):
                stream.append((dependency.name, list(hom.items()), left, right))
    return stream


def _reference_trigger_stream(query, dependencies):
    """The same stream from the frozen pre-kernel backtracking engine."""
    stream = []
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            for hom in reference_tgd_triggers(query, dependency):
                stream.append((dependency.name, list(hom.items())))
        elif isinstance(dependency, EGD):
            for hom, left, right in reference_egd_triggers(query, dependency):
                stream.append((dependency.name, list(hom.items()), left, right))
    return stream


def _assert_probes_identical(query, dependencies, label):
    """Probe every dependency (raw and regularized) through both engines."""
    raw = list(dependencies)
    assert _trigger_stream(query, raw) == _reference_trigger_stream(query, raw), (
        f"{label}: applicable-trigger streams diverge on raw Σ"
    )
    regularized = regularize_dependencies(raw)
    assert _trigger_stream(query, regularized) == _reference_trigger_stream(
        query, regularized
    ), f"{label}: applicable-trigger streams diverge on regularized Σ"


def _chase_outcome(chase_fn, query, dependencies, semantics, max_steps):
    try:
        result = chase_fn(query, dependencies, semantics, max_steps)
    except ChaseNonTerminationError:
        return "budget-exhausted"
    except ChaseFailedError:
        return "chase-failed"
    return [str(step) for step in result.steps] + [str(result.query)]


@pytest.mark.parametrize("index", range(CASES))
def test_campaign_case_binding_probe_matches_reference(index):
    """Seeded campaign: trigger streams and step records, case by case."""
    case = generate_case(SEED, index)
    for label, query in (("query", case.query), ("other", case.other)):
        _assert_probes_identical(query, case.dependencies, f"case {index}/{label}")
    semantics = ROTATION[index % len(ROTATION)]
    fast = _chase_outcome(
        sound_chase, case.query, case.dependencies, semantics, case.max_steps
    )
    slow = _chase_outcome(
        sound_chase_reference, case.query, case.dependencies, semantics, case.max_steps
    )
    assert fast == slow, (
        f"case {index}: {semantics} chase records diverge from the reference"
    )


@pytest.mark.parametrize(
    "path", CORPUS_PATHS, ids=[path.stem for path in CORPUS_PATHS]
)
def test_corpus_case_replays_through_binding_probe(path):
    """Every committed corpus shape replays clean through the new probe."""
    entry = load_corpus_file(path)
    case = entry.case
    for label, query in (("query", case.query), ("other", case.other)):
        _assert_probes_identical(query, case.dependencies, f"{entry.name}/{label}")


class TestFixtureCounters:
    """The new ChaseProfile counters on the paper fixtures (pinned values)."""

    def test_example_4_1_sigma_subset_scan_counters(self, ex41):
        result = max_bag_sigma_subset(ex41.q4, ex41.dependencies)
        assert sorted(d.name for d in result.removed) == ["sigma3", "sigma4"]
        profile = result.scan_profile
        assert profile is not None
        # Structural counts — independent of plan-cache warmth: the scan
        # probes five premise matches at the binding level and discharges
        # three of them (their conclusions extend) without a trigger dict.
        assert profile.extension_probes == 5
        assert profile.dicts_avoided == 3
        # Σ's plan set is warmed by the initial sound chase through the same
        # cache, so at minimum every non-vacuous dependency's Σ lookup hits.
        assert profile.subset_plans_reused >= 3

    def test_example_4_1_chase_profile_counts_probes(self, ex41):
        result = sound_chase(ex41.q4, ex41.dependencies, Semantics.BAG_SET)
        profile = result.profile
        assert profile is not None
        assert profile.extension_probes > 0
        # The applied triggers must cross the dict boundary, the discharged
        # ones must not.
        assert profile.dicts_avoided < profile.extension_probes

    def test_theorem_4_2_fixture_counters(self, ex41):
        """Theorem 4.2's uniqueness fixtures all exercise the probe layer."""
        for query in (ex41.q1, ex41.q2, ex41.q3, ex41.q4):
            for semantics in (Semantics.BAG, Semantics.BAG_SET):
                result = sound_chase(query, ex41.dependencies, semantics)
                profile = result.profile
                assert profile is not None
                assert profile.extension_probes > 0, (
                    f"{query.head_predicate}/{semantics}: no binding-level probes ran"
                )

    def test_counters_reach_session_stats(self, ex41):
        from repro.session import Session

        session = Session(dependencies=ex41.dependencies)
        session.sigma_subset(ex41.q4, "bag")
        profile = session.stats()["profile"]
        assert profile["extension_probes"] > 0
        assert profile["dicts_avoided"] > 0
        assert profile["subset_plans_reused"] > 0
