"""Coverage for the multiprocessing path of :mod:`repro.session.batch`.

The in-process pipeline is exercised throughout ``tests/test_session.py``;
these tests pin down the fan-out path: input-order results, per-item error
capture inside workers *and* during payload construction, chase-cache
isolation between the parent session and the worker processes, and the
rejection of custom strategies that cannot be shipped across the fork.
"""

from __future__ import annotations

import pytest

from repro import Session, parse_aggregate_query, parse_dependencies, parse_query
from repro.exceptions import SemanticsError
from repro.session.strategies import SetStrategy

SIGMA = """
p(X,Y) -> t(X,Y,W)
t(X,Y,Z) & t(X,Y,W) -> Z = W
"""


@pytest.fixture()
def sigma():
    return parse_dependencies(SIGMA, set_valued=["t"])


@pytest.fixture()
def pairs():
    q = parse_query
    return [
        (q("Q1(X) :- p(X,Y)"), q("Q2(X) :- p(X,Y), t(X,Y,W)")),  # equivalent
        (q("Q1(X) :- p(X,Y)"), q("Q3(X) :- p(X,Y), p(X,Z)")),
        (q("Q1(X) :- t(X,Y,Z)"), q("Q4(X) :- t(X,Y,Z), t(X,Y,W)")),
        (q("Q1(X) :- p(X,Y)"), q("Q5(X,Y) :- p(X,Y)")),  # different heads
        (q("Q1(X) :- p(X,Y), t(X,Y,W)"), q("Q6(X) :- p(X,Y)")),
        (q("Q1(X) :- r(X)"), q("Q7(X) :- r(X)")),
    ]


class TestOrderingAndParity:
    def test_results_stream_back_in_input_order(self, sigma, pairs):
        session = Session(dependencies=sigma)
        report = session.decide_many(pairs, semantics="bag", concurrency=2)
        assert [item.index for item in report] == list(range(len(pairs)))
        assert all(item.ok for item in report)

    def test_worker_verdicts_match_in_process_verdicts(self, sigma, pairs):
        concurrent = Session(dependencies=sigma).decide_many(
            pairs, semantics="bag", concurrency=2
        )
        sequential = Session(dependencies=sigma).decide_many(
            pairs, semantics="bag"
        )
        assert [bool(item.result) for item in concurrent] == [
            bool(item.result) for item in sequential
        ]

    def test_input_objects_are_preserved_on_items(self, sigma, pairs):
        report = Session(dependencies=sigma).decide_many(
            pairs, semantics="bag-set", concurrency=2
        )
        assert [item.input for item in report] == pairs


class TestErrorCapture:
    def test_worker_errors_are_captured_per_item(self, sigma, pairs):
        # A one-step budget makes every pair that needs a chase step fail
        # inside the worker with ChaseNonTerminationError; the no-op pair
        # over r/1 still decides fine.
        session = Session(dependencies=sigma, max_steps=1)
        report = session.decide_many(pairs, semantics="bag-set", concurrency=2)
        assert len(report) == len(pairs)
        failing = [item for item in report if not item.ok]
        assert failing, "expected the tight budget to fail some pairs"
        assert all(
            item.error_type == "ChaseNonTerminationError" for item in failing
        )
        last = report[len(pairs) - 1]  # (r(X), r(X)): no chase step needed
        assert last.ok and bool(last.result)

    def test_malformed_payloads_fail_only_their_item(self, sigma, pairs):
        bad_input = [pairs[0], None, pairs[1]]
        report = Session(dependencies=sigma).decide_many(
            bad_input, semantics="bag", concurrency=2
        )
        assert [item.ok for item in report] == [True, False, True]
        assert report[1].error_type == "TypeError"

    def test_reformulate_many_concurrency_captures_semantics_errors(self, sigma):
        # An explicitly requested semantics is an error for aggregate
        # queries (they pick their own, Theorem 6.3) — captured per item in
        # the worker, not raised out of the batch.
        queries = [
            parse_query("Q1(X) :- p(X,Y)"),
            parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y)"),
        ]
        report = Session(dependencies=sigma).reformulate_many(
            queries, semantics="bag-set", concurrency=2
        )
        assert report[0].ok
        assert not report[1].ok
        assert report[1].error_type == "SemanticsError"

    def test_raise_on_failure_names_the_first_failure(self, sigma, pairs):
        session = Session(dependencies=sigma, max_steps=1)
        report = session.decide_many(pairs, semantics="bag", concurrency=2)
        with pytest.raises(RuntimeError, match="ChaseNonTerminationError"):
            report.raise_on_failure()


class TestCacheIsolation:
    def test_worker_chases_do_not_touch_the_parent_cache(self, sigma, pairs):
        session = Session(dependencies=sigma)
        before = session.cache_stats()
        report = session.decide_many(pairs, semantics="bag", concurrency=2)
        assert all(item.ok for item in report)
        after = session.cache_stats()
        assert (after.hits, after.misses, after.size) == (
            before.hits,
            before.misses,
            before.size,
        )

    def test_in_process_run_populates_the_shared_cache(self, sigma, pairs):
        session = Session(dependencies=sigma)
        session.decide_many(pairs, semantics="bag")
        first = session.cache_stats()
        assert first.misses > 0 and first.size > 0
        session.decide_many(pairs, semantics="bag")
        second = session.cache_stats()
        assert second.hits > first.hits  # warm rerun is served from cache
        assert second.misses == first.misses

    def test_workers_decide_identically_despite_cold_caches(self, sigma, pairs):
        # Every worker process builds its own Session: verdicts must not
        # depend on whether a chase came from a warm or a cold cache.
        warm = Session(dependencies=sigma)
        warm.decide_many(pairs, semantics="bag")  # warm the parent cache
        warm_report = warm.decide_many(pairs, semantics="bag")
        cold_report = Session(dependencies=sigma).decide_many(
            pairs, semantics="bag", concurrency=2
        )
        assert [bool(item.result) for item in warm_report] == [
            bool(item.result) for item in cold_report
        ]


class TestConcurrencyGuards:
    def test_custom_strategy_is_rejected_for_concurrency(self, sigma, pairs):
        class MySetStrategy(SetStrategy):
            name = "my-set"
            aliases = ()

        session = Session(dependencies=sigma)
        session.register_semantics(MySetStrategy())
        with pytest.raises(SemanticsError, match="custom semantics strategy"):
            session.decide_many(pairs, semantics="my-set", concurrency=2)

    def test_single_item_batches_stay_in_process(self, sigma, pairs):
        # One item never pays for a pool: the shared cache sees the chases.
        session = Session(dependencies=sigma)
        report = session.decide_many(pairs[:1], semantics="bag", concurrency=4)
        assert report[0].ok
        assert session.cache_stats().misses > 0


class TestPoolReuse:
    """The Session-held worker pool: spawned once, reused across batches,
    torn down on Σ change and on close()."""

    def test_pool_is_reused_across_batch_calls(self, sigma, pairs):
        session = Session(dependencies=sigma)
        session.decide_many(pairs, semantics="bag", concurrency=2)
        first_pool = session._batch_pool
        assert first_pool is not None
        session.decide_many(pairs, semantics="bag-set", concurrency=2)
        assert session._batch_pool is first_pool
        assert session.stats()["batch_pool"] == {
            "workers": 2,
            "pools_created": 1,
        }
        session.close()

    def test_pool_is_rebuilt_on_concurrency_change(self, sigma, pairs):
        session = Session(dependencies=sigma)
        session.decide_many(pairs, semantics="bag", concurrency=2)
        first_pool = session._batch_pool
        session.decide_many(pairs, semantics="bag", concurrency=3)
        assert session._batch_pool is not first_pool
        assert session.stats()["batch_pool"]["pools_created"] == 2
        session.close()

    def test_pool_is_rebuilt_on_sigma_change(self, sigma, pairs):
        session = Session(dependencies=sigma)
        session.decide_many(pairs, semantics="bag", concurrency=2)
        first_pool = session._batch_pool
        session.set_dependencies(parse_dependencies("p(X,Y) -> q(Y)"))
        q = parse_query
        new_pairs = [(q("Q(X) :- p(X,Y)"), q("Q(X) :- p(X,Y), q(Y)"))] * 2
        report = session.decide_many(new_pairs, semantics="set", concurrency=2)
        assert all(item.ok for item in report)
        assert session._batch_pool is not first_pool
        assert session.stats()["batch_pool"]["pools_created"] == 2
        session.close()

    def test_close_tears_the_pool_down(self, sigma, pairs):
        session = Session(dependencies=sigma)
        session.decide_many(pairs, semantics="bag", concurrency=2)
        assert session._batch_pool is not None
        had_shm = session._batch_shm
        session.close()
        assert session._batch_pool is None
        assert session._batch_pool_key is None
        assert session._batch_shm is None
        if had_shm is not None:
            # The shared-memory intern snapshot was unlinked with the pool.
            import multiprocessing.shared_memory as shm_mod

            with pytest.raises(FileNotFoundError):
                shm_mod.SharedMemory(name=had_shm.name)

    def test_close_is_idempotent_and_session_still_decides(self, sigma, pairs):
        session = Session(dependencies=sigma)
        session.decide_many(pairs, semantics="bag", concurrency=2)
        session.close()
        session.close()
        # In-process work is unaffected by pool teardown...
        assert session.decide(pairs[0][0], pairs[0][1], "bag").equivalent
        # ...and a new batch simply builds a fresh pool.
        report = session.decide_many(pairs, semantics="bag", concurrency=2)
        assert all(item.ok for item in report)
        assert session.stats()["batch_pool"]["pools_created"] == 2
        session.close()
