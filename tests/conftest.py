"""Shared fixtures for the test suite.

Most fixtures are the paper's examples (built once per session — they are
immutable) plus a couple of small schemas and instances reused across
modules.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `pytest tests -q` work from a plain checkout without PYTHONPATH=src.
# Kept ahead of any environment entry so an installed (possibly stale)
# repro never shadows the checkout.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.database import DatabaseInstance
from repro.paperlib import (
    chain_workload,
    example_4_1,
    example_4_2,
    example_4_3,
    example_4_6,
    example_e_1,
    example_e_2,
    orders_workload,
)
from repro.schema import DatabaseSchema


@pytest.fixture(scope="session")
def ex41():
    return example_4_1()


@pytest.fixture(scope="session")
def ex42():
    return example_4_2()


@pytest.fixture(scope="session")
def ex43():
    return example_4_3()


@pytest.fixture(scope="session")
def ex46():
    return example_4_6()


@pytest.fixture(scope="session")
def exE1():
    return example_e_1()


@pytest.fixture(scope="session")
def exE2():
    return example_e_2()


@pytest.fixture(scope="session")
def orders():
    return orders_workload()


@pytest.fixture(scope="session")
def chain3():
    return chain_workload(3)


@pytest.fixture()
def small_schema() -> DatabaseSchema:
    return DatabaseSchema.from_arities({"p": 2, "r": 1, "s": 2})


@pytest.fixture()
def small_instance(small_schema) -> DatabaseInstance:
    return DatabaseInstance.from_dict(
        {
            "p": [(1, 2), (1, 3), (2, 3)],
            "r": [(1,), (2,)],
            "s": [(2, 5), (3, 5), (3, 6)],
        },
        small_schema,
    )
