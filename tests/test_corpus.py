"""Replay of the committed regression corpus (``tests/corpus/*.json``).

Every corpus case is a previously interesting shape — a found failure, or a
deliberately nasty configuration worth pinning — and replays through the full
differential oracle as its own named pytest parametrization, so a regression
names the exact corpus file that caught it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import load_corpus_file, run_oracle
from repro.fuzz.corpus import iter_corpus_paths

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_PATHS = list(iter_corpus_paths(CORPUS_DIR))


def test_corpus_is_not_empty():
    """The corpus directory must keep existing and keep holding cases."""
    assert CORPUS_PATHS, f"no corpus cases under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS_PATHS, ids=[path.stem for path in CORPUS_PATHS]
)
def test_corpus_case_replays_clean(path):
    entry = load_corpus_file(path)
    assert entry.name, f"{path.name}: corpus cases must be named"
    assert entry.description, f"{path.name}: corpus cases must say why they exist"
    report = run_oracle(entry.case)
    assert report.ok, f"{entry.name}: {[str(m) for m in report.mismatches]}"
