"""Tests for the fuzz subsystem: generator, oracle, shrinker, corpus, CLI.

The differential campaigns themselves run in CI (``repro fuzz --cases 150
--seed 0`` as a deterministic smoke step, a 5k-case nightly soak); the tests
here pin the machinery *around* those campaigns — determinism, generated-Σ
invariants, shape coverage, that the oracle actually catches an injected
engine divergence, 1-minimality of shrinking, and corpus round trips.
"""

from __future__ import annotations

import json

import pytest

from repro.chase.sound_chase import sound_chase
from repro.core.atoms import Atom
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.dependencies.base import EGD, TGD, DependencySet
from repro.dependencies.regularize import is_regularized_set
from repro.dependencies.weak_acyclicity import is_weakly_acyclic
from repro.cli import main
from repro.fuzz import (
    FuzzCase,
    GeneratorConfig,
    case_from_dict,
    case_to_dict,
    generate_case,
    generate_cases,
    run_campaign,
    run_oracle,
    shrink_case,
    with_max_steps,
)
from repro.fuzz.corpus import CorpusError, load_corpus_file, save_case


class TestGenerator:
    def test_same_seed_same_cases(self):
        for index in (0, 7, 23):
            first = generate_case(11, index)
            second = generate_case(11, index)
            assert first.query == second.query
            assert first.other == second.other
            assert list(first.dependencies) == list(second.dependencies)
            assert (
                first.dependencies.set_valued_predicates
                == second.dependencies.set_valued_predicates
            )

    def test_different_seeds_differ(self):
        cases_a = generate_cases(0, 20)
        cases_b = generate_cases(1, 20)
        assert any(
            a.query != b.query or a.other != b.other
            for a, b in zip(cases_a, cases_b)
        )

    def test_sigma_blocks_share_dependencies(self):
        config = GeneratorConfig(sigma_block_size=5)
        block = [generate_case(3, index, config) for index in range(5)]
        outside = generate_case(3, 5, config)
        assert all(
            list(case.dependencies) == list(block[0].dependencies)
            for case in block
        )
        # The next block redraws Σ (vocabulary or dependencies change).
        assert list(outside.dependencies) != list(block[0].dependencies) or (
            outside.dependencies.set_valued_predicates
            != block[0].dependencies.set_valued_predicates
            or outside.arities() != block[0].arities()
        )

    def test_generated_sigma_is_regularized_and_weakly_acyclic(self):
        for case in generate_cases(5, 60):
            assert is_regularized_set(case.dependencies)
            assert is_weakly_acyclic(case.dependencies)

    def test_generated_queries_are_safe_and_arity_consistent(self):
        for case in generate_cases(2, 60):
            assert case.query.body and case.other.body
            assert case.has_consistent_arities()
            assert 1 <= len(case.query.head_terms)

    def test_shape_coverage(self):
        """The generator must keep producing the rare shapes it exists for."""
        cases = generate_cases(0, 300)
        self_join = constant_in_query = repeated_var_in_atom = False
        conclusion_constant = has_egd = has_set_valued = duplicate_mutation = False
        for case in cases:
            predicates = [atom.predicate for atom in case.query.body]
            self_join |= len(predicates) != len(set(predicates))
            constant_in_query |= any(
                isinstance(t, Constant)
                for atom in case.query.body
                for t in atom.terms
            )
            repeated_var_in_atom |= any(
                len([t for t in atom.terms if t == v]) > 1
                for atom in case.query.body
                for v in atom.variables()
            )
            for dependency in case.dependencies:
                if isinstance(dependency, TGD):
                    conclusion_constant |= any(
                        isinstance(t, Constant)
                        for atom in dependency.conclusion
                        for t in atom.terms
                    )
                has_egd |= isinstance(dependency, EGD)
            has_set_valued |= bool(case.dependencies.set_valued_predicates)
            duplicate_mutation |= len(case.other.body) == len(case.query.body) + 1 and (
                case.other.body[-1] in case.query.body
            )
        assert self_join and constant_in_query and repeated_var_in_atom
        assert conclusion_constant and has_egd and has_set_valued
        assert duplicate_mutation

    def test_with_max_steps(self):
        case = generate_case(0, 0)
        tightened = with_max_steps(case, 3)
        assert tightened.max_steps == 3 and tightened.query == case.query

    def test_generate_block_matches_per_case_generation(self):
        from repro.fuzz import generate_block

        config = GeneratorConfig(sigma_block_size=4)
        block = generate_block(6, 1, config, stop=7)
        assert [case.index for case in block] == [4, 5, 6]
        for case in block:
            assert case == generate_case(6, case.index, config)

    def test_sigma_block_size_zero_means_fresh_sigma_per_case(self):
        config = GeneratorConfig(sigma_block_size=0)
        case = generate_case(0, 5, config)  # must not ZeroDivisionError
        assert case.index == 5
        assert run_campaign(0, 3, config).ok


class TestOracle:
    def test_generated_cases_pass(self):
        for case in generate_cases(9, 25):
            report = run_oracle(case)
            assert report.ok, f"{case}: {report.failed_checks()}"

    def test_catches_injected_chase_divergence(self, monkeypatch):
        """A reference engine returning a different terminal query must trip
        the chase differential (and the verdict recomputation with it)."""
        import repro.fuzz.oracle as oracle_module

        def broken_reference(query, dependencies, semantics, max_steps):
            result = sound_chase(query, dependencies, semantics, max_steps)
            sabotaged = result.query.add_atoms(
                [Atom("sabotage", [Variable("Zz")])]
            )
            result.query = sabotaged
            return result

        monkeypatch.setattr(
            oracle_module, "sound_chase_reference", broken_reference
        )
        report = run_oracle(generate_case(0, 0))
        assert not report.ok
        assert any(
            check.startswith("chase-differential")
            for check in report.failed_checks()
        )

    def test_catches_injected_homomorphism_divergence(self, monkeypatch):
        import repro.fuzz.oracle as oracle_module

        monkeypatch.setattr(
            oracle_module, "iter_homomorphisms_reference", lambda *a, **k: iter(())
        )
        case = FuzzCase(
            query=ConjunctiveQuery("Q", [Variable("X")], [Atom("p", [Variable("X")])]),
            other=ConjunctiveQuery("Q2", [Variable("Y")], [Atom("p", [Variable("Y")])]),
            dependencies=DependencySet(),
        )
        report = run_oracle(case)
        assert "homomorphism-differential" in report.failed_checks()

    def test_chase_failure_outcomes_agree(self):
        """Both engines raise ChaseFailedError on the constant-clash corpus
        shape; the oracle records agreement, not a mismatch."""
        case = case_from_dict(
            {
                "query": "Q(X) :- p(X, 0), p(X, 1)",
                "other": "Q2(X) :- p(X, 0)",
                "dependencies": ["p(K, A) & p(K, B) -> A = B"],
            }
        )
        report = run_oracle(case)
        assert report.ok
        assert report.verdicts == {}  # no verdict survives a failed chase

    def test_budget_exhaustion_agreement(self):
        """With a one-step budget both engines run out identically; the case
        passes but is flagged as budget-exhausted."""
        case = case_from_dict(
            {
                "query": "Q(X) :- p(X, Y)",
                "other": "Q2(X) :- p(X, Y), t(X, Y, W)",
                "dependencies": [
                    "p(X, Y) -> t(X, Y, W)",
                    "t(X, Y, Z) & t(X, Y, W) -> Z = W",
                ],
                "set_valued": ["t"],
                "max_steps": 1,
            }
        )
        report = run_oracle(case)
        assert report.ok
        assert report.budget_exhausted


class TestShrink:
    def test_greedy_shrink_is_one_minimal(self):
        x, y = Variable("X"), Variable("Y")
        case = FuzzCase(
            query=ConjunctiveQuery(
                "Q",
                [x],
                [Atom("bad", [x]), Atom("p", [x, y]), Atom("r", [y, y])],
            ),
            other=ConjunctiveQuery(
                "Q2", [x], [Atom("p", [x, y]), Atom("r", [y, y])]
            ),
            dependencies=DependencySet(
                [TGD([Atom("p", [x, y])], [Atom("r", [y, y])], name="t1")],
                ["p"],
            ),
            seed=7,
            index=3,
        )

        def still_fails(candidate: FuzzCase) -> bool:
            return any(atom.predicate == "bad" for atom in candidate.query.body)

        shrunk = shrink_case(case, "chase-differential[bag]", still_fails=still_fails)
        assert [atom.predicate for atom in shrunk.query.body] == ["bad"]
        assert len(shrunk.other.body) == 1  # irrelevant partner minimized too
        assert len(shrunk.dependencies) == 0
        assert not shrunk.dependencies.set_valued_predicates
        assert "shrunk" in shrunk.origin
        # (seed, index) no longer regenerates this content — a serialized
        # shrunk case must not advertise generator coordinates.
        assert shrunk.seed is None and shrunk.index is None

    def test_shrink_respects_head_safety(self):
        x, y = Variable("X"), Variable("Y")
        case = FuzzCase(
            query=ConjunctiveQuery(
                "Q", [x, y], [Atom("bad", [x]), Atom("p", [y])]
            ),
            other=ConjunctiveQuery("Q2", [x], [Atom("bad", [x])]),
            dependencies=DependencySet(),
        )

        def still_fails(candidate: FuzzCase) -> bool:
            return any(atom.predicate == "bad" for atom in candidate.query.body)

        shrunk = shrink_case(case, "whatever", still_fails=still_fails)
        # p(Y) cannot be deleted: head variable Y would be orphaned.
        assert [atom.predicate for atom in shrunk.query.body] == ["bad", "p"]


class TestCorpusSerialization:
    def test_round_trip(self):
        case = generate_case(4, 13)
        payload = case_to_dict(case, name="n", description="d")
        rebuilt = case_from_dict(payload)
        assert rebuilt.query == case.query
        assert rebuilt.other == case.other
        assert rebuilt.max_steps == case.max_steps
        assert rebuilt.seed == 4 and rebuilt.index == 13
        assert (
            rebuilt.dependencies.set_valued_predicates
            == case.dependencies.set_valued_predicates
        )
        # Dependency names are not rendered; compare structurally.
        assert [
            (d.premise, getattr(d, "conclusion", getattr(d, "equalities", None)))
            for d in rebuilt.dependencies
        ] == [
            (d.premise, getattr(d, "conclusion", getattr(d, "equalities", None)))
            for d in case.dependencies
        ]

    def test_save_and_load_file(self, tmp_path):
        case = generate_case(0, 2)
        path = save_case(case, tmp_path / "case.json", name="roundtrip")
        loaded = load_corpus_file(path)
        assert loaded.name == "roundtrip"
        assert loaded.case.query == case.query
        assert run_oracle(loaded.case).ok

    def test_malformed_corpus_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"query": "not a query"}))
        with pytest.raises(CorpusError):
            load_corpus_file(path)

    def test_missing_fields_raise(self):
        with pytest.raises(CorpusError):
            case_from_dict({"query": "Q(X) :- p(X)"})


class TestCampaign:
    def test_small_campaign_passes_and_counts_verdicts(self):
        result = run_campaign(0, 40)
        assert result.ok and result.passed == 40
        assert sum(result.verdict_counts.values()) > 0
        assert any(key.endswith("=eq") for key in result.verdict_counts)
        assert any(key.endswith("=ne") for key in result.verdict_counts)

    def test_jobs_fan_out_matches_serial_campaign(self):
        """--jobs parallelizes both the decisions and the oracle passes;
        the outcome must be byte-for-byte the serial outcome."""
        serial = run_campaign(0, 24)
        parallel = run_campaign(0, 24, jobs=2)
        assert parallel.ok and serial.ok
        assert parallel.passed == serial.passed
        assert parallel.verdict_counts == serial.verdict_counts
        assert parallel.budget_exhausted == serial.budget_exhausted
        # The parity above must come from the workers, not from a silent
        # fall-back to the serial path after a broken pool.
        assert parallel.oracle_pool_fallbacks == 0

    def test_broken_oracle_pool_is_counted_not_hidden(self, monkeypatch):
        import repro.fuzz.runner as runner_module

        class ExplodingPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("unpicklable payload")

            def shutdown(self):
                pass

        class FakeExecutorFactory:
            def __call__(self, max_workers=None):
                return ExplodingPool()

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", FakeExecutorFactory()
        )
        result = run_campaign(0, 12, jobs=2)
        # The broken executor also takes out the first block's decide_many
        # pipeline (same pool class) — those cases fail as batch-pipeline —
        # but the campaign completes: later blocks decide in-process and
        # every oracle pass falls back to the serial path, counted.
        assert result.oracle_pool_fallbacks > 0
        assert result.passed > 0
        assert all(
            failure.report.failed_checks() == ["batch-pipeline"]
            for failure in result.failures
        )
        assert any("WARNING" in line for line in result.summary_lines())

    def test_failure_reports_are_written(self, monkeypatch, tmp_path):
        """An injected engine divergence must surface as a failure with a
        reproduction file naming the exact seed and case index."""
        import repro.fuzz.oracle as oracle_module

        def broken_reference(query, dependencies, semantics, max_steps):
            result = sound_chase(query, dependencies, semantics, max_steps)
            result.query = result.query.add_atoms(
                [Atom("sabotage", [Variable("Zz")])]
            )
            return result

        monkeypatch.setattr(
            oracle_module, "sound_chase_reference", broken_reference
        )
        result = run_campaign(0, 3, failure_dir=tmp_path)
        assert result.failed == 3
        reports = sorted(tmp_path.glob("*.json"))
        assert len(reports) == 3
        payload = json.loads(reports[0].read_text())
        assert payload["seed"] == 0 and "query" in payload

    def test_oracle_crash_fails_one_case_not_the_campaign(
        self, monkeypatch, tmp_path
    ):
        """An unexpected exception inside the oracle must fail that case
        (with a written reproduction) and let the rest of the campaign run —
        losing a 5k-soak find to a crash would defeat the subsystem."""
        import repro.fuzz.runner as runner_module
        from repro.fuzz.oracle import run_oracle as real_run_oracle

        def crashes_on_case_one(case, **kwargs):
            if case.index == 1:
                raise KeyError("engine exploded")
            return real_run_oracle(case, **kwargs)

        monkeypatch.setattr(runner_module, "run_oracle", crashes_on_case_one)
        result = run_campaign(0, 4, shrink=True, failure_dir=tmp_path)
        assert result.passed == 3 and result.failed == 1
        failure = result.failures[0]
        assert failure.report.failed_checks() == ["oracle-crash"]
        assert "KeyError" in failure.report.mismatches[0].detail
        assert failure.shrunk is None  # crash probes are not re-run
        assert result.failure_reports == sorted(tmp_path.glob("*.json"))
        assert result.failure_reports[0].name == "seed0_case1.json"

    def test_replay_failure_reports_strip_the_json_suffix(
        self, monkeypatch, tmp_path
    ):
        import repro.fuzz.runner as runner_module
        from repro.fuzz import replay_cases
        from repro.fuzz.corpus import load_corpus_file
        from repro.fuzz.oracle import CaseReport, OracleMismatch

        (tmp_path / "one.json").write_text(
            json.dumps(
                {
                    "name": "one",
                    "description": "handmade: no seed/index metadata",
                    "query": "Q(X) :- p(X, Y)",
                    "other": "Q2(X) :- p(X, Y)",
                    "dependencies": [],
                }
            )
        )
        entry = load_corpus_file(tmp_path / "one.json")

        def always_fails(case, **kwargs):
            return CaseReport(
                case=case,
                mismatches=[OracleMismatch("sql-roundtrip", "boom")],
            )

        monkeypatch.setattr(runner_module, "run_oracle", always_fails)
        out = tmp_path / "out"
        result = replay_cases([entry.case], failure_dir=out)
        assert result.failed == 1
        assert [path.name for path in result.failure_reports] == ["one.json"]

    def test_pipeline_crash_fails_cases_without_bogus_artifacts(
        self, monkeypatch, tmp_path
    ):
        """A decide_many crash must fail the block's cases, but the cases
        themselves replay clean — so no shrink probes run and no misleading
        per-case reproduction files are written."""
        import repro.fuzz.runner as runner_module

        def exploding_block_verdicts(session, block, jobs):
            raise RuntimeError("worker pool fell over")

        monkeypatch.setattr(
            runner_module, "_block_verdicts", exploding_block_verdicts
        )
        result = run_campaign(0, 2, shrink=True, failure_dir=tmp_path)
        assert result.failed == 2
        assert all(
            failure.report.failed_checks() == ["batch-pipeline"]
            and failure.shrunk is None
            for failure in result.failures
        )
        assert list(tmp_path.glob("*.json")) == []


class TestFuzzCli:
    def test_fuzz_command_smoke(self, capsys):
        code = main(["fuzz", "--cases", "8", "--seed", "0"])
        output = capsys.readouterr().out
        assert code == 0
        assert "8 cases" in output and "8 passed" in output

    def test_fuzz_replay_directory(self, capsys, tmp_path):
        save_case(generate_case(0, 1), tmp_path / "one.json", name="one")
        code = main(["fuzz", "--replay", str(tmp_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "replaying one" in output and "1 passed" in output

    def test_fuzz_replay_empty_directory(self, capsys, tmp_path):
        code = main(["fuzz", "--replay", str(tmp_path)])
        assert code == 2
        assert "no corpus cases" in capsys.readouterr().err

    def test_fuzz_replay_missing_path_reports_error(self, capsys, tmp_path):
        code = main(["fuzz", "--replay", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_fuzz_reports_failures_with_exit_code(
        self, capsys, monkeypatch, tmp_path
    ):
        import repro.fuzz.runner as runner_module
        from repro.fuzz.oracle import CaseReport, OracleMismatch

        def always_fails(case, **kwargs):
            return CaseReport(
                case=case,
                mismatches=[OracleMismatch("chase-differential[bag]", "boom")],
            )

        monkeypatch.setattr(runner_module, "run_oracle", always_fails)
        code = main(
            [
                "fuzz",
                "--cases",
                "2",
                "--seed",
                "5",
                "--failure-dir",
                str(tmp_path),
            ]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in output and "chase-differential[bag]: boom" in output
        assert "regenerate: repro fuzz --seed 5" in output
        assert sorted(tmp_path.glob("*.json"))
