"""Tests for the unified Session engine: registry dispatch, chase-result
caching, batch pipelines, and the deprecation shims over the old flat API."""

from __future__ import annotations

import pytest

import repro.session.strategies as strategies_module
from repro import (
    ChaseNonTerminationError,
    SemanticsError,
    Session,
    UnknownSemanticsError,
    parse_dependencies,
    parse_query,
)
from repro.equivalence import (
    decide_all,
    decide_equivalence,
    equivalent_under_dependencies_bag,
    equivalent_under_dependencies_bag_set,
    equivalent_under_dependencies_set,
)
from repro.equivalence.decision import EquivalenceVerdict
from repro.reformulation import bag_c_and_b, bag_set_c_and_b, c_and_b
from repro.semantics import Semantics
from repro.session import (
    BatchReport,
    SemanticsRegistry,
    SetStrategy,
    assert_proposition_6_1,
    default_registry,
)


@pytest.fixture()
def session41(ex41) -> Session:
    return Session(dependencies=ex41.dependencies)


# --------------------------------------------------------------------------- #
# Registry dispatch
# --------------------------------------------------------------------------- #
class TestRegistryDispatch:
    def test_builtin_names(self):
        registry = default_registry()
        assert set(registry.names()) == {"set", "bag", "bag-set"}

    @pytest.mark.parametrize(
        "spelling", ["bag-set", "bag_set", "bagset", "bs", "BAG-SET", Semantics.BAG_SET]
    )
    def test_aliases_resolve_to_bag_set(self, spelling):
        strategy = default_registry().resolve(spelling)
        assert strategy.name == "bag-set"

    def test_example_4_1_matrix_through_session(self, ex41, session41):
        # The Example 4.1 verdict matrix (Qi vs Q4) dispatched by name.
        expected = {
            ("Q1", "set"): True, ("Q1", "bag-set"): False, ("Q1", "bag"): False,
            ("Q2", "set"): True, ("Q2", "bag-set"): True, ("Q2", "bag"): False,
            ("Q3", "set"): True, ("Q3", "bag-set"): True, ("Q3", "bag"): True,
        }
        queries = {"Q1": ex41.q1, "Q2": ex41.q2, "Q3": ex41.q3}
        for (name, semantics), expected_verdict in expected.items():
            verdict = session41.decide(queries[name], ex41.q4, semantics)
            assert bool(verdict) is expected_verdict, (name, semantics)

    def test_unknown_semantics_raises(self, ex41, session41):
        with pytest.raises(UnknownSemanticsError) as excinfo:
            session41.decide(ex41.q1, ex41.q4, semantics="probabilistic")
        message = str(excinfo.value)
        assert "probabilistic" in message
        assert "bag-set" in message  # the error lists what *is* registered
        assert excinfo.value.known == ("bag", "bag-set", "set")

    def test_unknown_semantics_is_repro_and_key_error(self, ex41, session41):
        from repro import ReproError

        with pytest.raises(ReproError):
            session41.chase(ex41.q4, semantics="no-such")
        with pytest.raises(KeyError):
            session41.chase(ex41.q4, semantics="no-such")

    def test_third_party_strategy_registration(self, ex41, session41):
        class RenamedSetStrategy(SetStrategy):
            name = "certain"
            aliases = ("c",)

        session41.register_semantics(RenamedSetStrategy())
        verdict = session41.decide(ex41.q1, ex41.q4, semantics="certain")
        assert verdict.equivalent is True  # behaves like set semantics
        assert bool(session41.decide(ex41.q1, ex41.q4, "c")) is True

    def test_duplicate_registration_refused_unless_replace(self):
        registry = default_registry()
        with pytest.raises(SemanticsError):
            registry.register(SetStrategy())
        registry.register(SetStrategy(), replace=True)  # explicit override is fine

    def test_replacing_a_builtin_invalidates_the_cache(self, ex41, session41):
        verdict = session41.decide(ex41.q1, ex41.q4, "set")
        assert verdict.equivalent is True and len(session41.cache) == 2

        class InvertedSetStrategy(SetStrategy):
            aliases = ()

            def equivalent_chased(self, chased1, chased2, dependencies):
                return not super().equivalent_chased(chased1, chased2, dependencies)

        session41.register_semantics(InvertedSetStrategy(), replace=True)
        # Chases cached by the replaced strategy must not be served as the
        # new strategy's results.
        assert len(session41.cache) == 0
        assert session41.decide(ex41.q1, ex41.q4, "set").equivalent is False

    def test_registering_a_fresh_name_keeps_the_cache(self, ex41, session41):
        session41.chase(ex41.q4, "bag")

        class RenamedSetStrategy(SetStrategy):
            name = "certain"
            aliases = ()

        session41.register_semantics(RenamedSetStrategy())
        assert len(session41.cache) == 1  # unrelated registration: no invalidation

    def test_replacement_displaces_stale_aliases(self, ex41, session41):
        # Replacing "bag" must also drop the old strategy's "b" alias:
        # a chase via a stale alias would poison the new strategy's cache
        # entries (keys carry only the canonical name).
        class CustomBag(SetStrategy):
            name = "bag"
            aliases = ()

        session41.register_semantics(CustomBag(), replace=True)
        assert session41.strategy_for("bag").__class__ is CustomBag
        with pytest.raises(UnknownSemanticsError):
            session41.strategy_for("b")

    def test_shared_registry_listeners_are_pruned(self, ex41):
        import gc

        registry = default_registry()
        for _ in range(5):
            Session(dependencies=ex41.dependencies, registry=registry)
        gc.collect()

        class OtherSet(SetStrategy):
            aliases = ()

        live = Session(dependencies=ex41.dependencies, registry=registry)
        live.chase(ex41.q4, "bag")
        registry.register(OtherSet(), replace=True)  # triggers notification + pruning
        assert len(live.cache) == 0  # the live session was invalidated
        # Dead sessions' weak listeners were dropped; only the live one remains.
        assert len(registry._shadow_listeners) == 1

    def test_direct_registry_replacement_also_invalidates(self, ex41, session41):
        # The registry is a public attribute; replacing through it directly
        # must invalidate the session cache just like register_semantics.
        session41.chase(ex41.q4, "set")

        class OtherSetStrategy(SetStrategy):
            aliases = ()

        session41.registry.register(OtherSetStrategy(), replace=True)
        assert len(session41.cache) == 0

    def test_custom_strategy_reformulate_without_engine(self, ex41):
        from repro.session import BagStrategy

        class RenamedBagStrategy(BagStrategy):
            name = "my-bag"
            aliases = ()

            @property
            def token(self):
                return self.name

        result = RenamedBagStrategy().reformulate(
            ex41.q4, ex41.dependencies, check_sigma_minimality=False
        )
        # Dispatch went through the strategy itself (custom token preserved)
        # and produced the Bag-C&B reformulation space.
        assert result.semantics == "my-bag"
        assert result.contains_isomorphic(ex41.q3)
        assert not result.contains_isomorphic(ex41.q1)

    def test_registry_rejects_non_strategy(self):
        with pytest.raises(SemanticsError):
            SemanticsRegistry().register("set")  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# Chase-result cache
# --------------------------------------------------------------------------- #
class TestChaseCache:
    def test_hit_and_miss_counters(self, ex41, session41):
        session41.decide(ex41.q1, ex41.q4, "bag")
        stats = session41.cache_stats()
        assert (stats.hits, stats.misses) == (0, 2)
        session41.decide(ex41.q1, ex41.q4, "bag")
        stats = session41.cache_stats()
        assert (stats.hits, stats.misses) == (2, 2)
        assert stats.hit_rate == 0.5

    def test_warm_decide_skips_sound_chase_entirely(self, ex41, session41, monkeypatch):
        cold = session41.decide(ex41.q1, ex41.q4, "bag")

        def exploding_chase(*args, **kwargs):
            raise AssertionError("sound_chase must not run on a warm cache")

        monkeypatch.setattr(strategies_module, "sound_chase", exploding_chase)
        warm = session41.decide(ex41.q1, ex41.q4, "bag")
        assert warm.equivalent is cold.equivalent
        assert warm.chased_left == cold.chased_left

    def test_semantics_and_max_steps_are_part_of_the_key(self, ex41, session41):
        session41.chase(ex41.q4, "bag")
        session41.chase(ex41.q4, "bag-set")
        assert session41.cache_stats().misses == 2  # different semantics: no sharing
        session41.chase(ex41.q4, "bag", max_steps=77)
        assert session41.cache_stats().misses == 3  # different budget: no sharing
        session41.chase(ex41.q4, "bag")
        assert session41.cache_stats().hits == 1

    def test_alpha_variant_queries_share_an_entry(self, session41, ex41):
        variant = parse_query("Q4(A) :- p(A,B)")
        session41.chase(ex41.q4, "bag")
        result = session41.chase(variant, "bag")
        stats = session41.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert result.semantics is Semantics.BAG

    def test_sigma_change_invalidates(self, ex41, session41):
        q1, q4 = ex41.q1, ex41.q4
        assert bool(session41.decide(q1, q4, "set")) is True
        assert len(session41.cache) == 2

        # Dropping Σ entirely flips the set-semantics verdict — and must not
        # be answered from the stale cache.
        session41.dependencies = ()
        assert len(session41.cache) == 0
        assert session41.cache_stats().invalidations == 1
        assert bool(session41.decide(q1, q4, "set")) is False

        session41.set_dependencies(ex41.dependencies)
        assert bool(session41.decide(q1, q4, "set")) is True

    def test_clear_cache(self, ex41, session41):
        session41.chase(ex41.q4, "bag")
        session41.clear_cache()
        assert len(session41.cache) == 0

    def test_cached_falsy_values_are_hits_not_misses(self):
        # Regression: get() used to return None on a miss, so a legitimately
        # cached falsy value was indistinguishable from a miss — it was
        # recomputed by the caller and the lookup double-counted as a miss.
        from repro.session.cache import MISSING, ChaseCache

        cache = ChaseCache(maxsize=8)
        for key, falsy in (("a", None), ("b", False), ("c", 0), ("d", [])):
            cache.put(key, falsy)
        for key, falsy in (("a", None), ("b", False), ("c", 0), ("d", [])):
            value = cache.get(key)
            assert value is not MISSING
            assert value == falsy
        stats = cache.stats
        assert (stats.hits, stats.misses) == (4, 0)
        assert cache.get("absent") is MISSING
        assert cache.stats.misses == 1

    def test_missing_sentinel_is_identity_checked(self):
        from repro.session.cache import MISSING, ChaseCache

        cache = ChaseCache(maxsize=2)
        # The sentinel is falsy-agnostic: it is its own type, not None.
        assert MISSING is not None
        assert cache.get("nope") is MISSING

    def test_session_profile_aggregates_cold_chases_only(self, ex41, session41):
        cold = session41.chase(ex41.q4, "bag")
        profile = session41.chase_profile()
        assert profile.runs == 1
        assert profile.steps == cold.step_count
        session41.chase(ex41.q4, "bag")  # warm: served from cache
        assert session41.chase_profile().runs == 1
        session41.chase(ex41.q4, "bag-set")  # cold again under other semantics
        after = session41.chase_profile()
        assert after.runs == 2
        assert after.wall_time >= profile.wall_time

    def test_in_place_sigma_mutation_is_refused(self, ex41, session41):
        # Mutating Σ behind the memoized fingerprint would serve stale
        # chases; the session's snapshot refuses and points at the safe path.
        from repro import DependencyError

        tgd = ex41.dependencies.tgds()[0]
        with pytest.raises(DependencyError, match="set_dependencies"):
            session41.dependencies.add(tgd)
        # The underlying sequence is a tuple, so even direct attribute
        # mutation (.append/.clear on the list) is impossible.
        with pytest.raises(AttributeError):
            session41.dependencies.dependencies.append(tgd)
        # The caller's own set stays mutable and unaffected.
        before = len(ex41.dependencies)
        session41.set_dependencies(ex41.dependencies)
        assert len(ex41.dependencies) == before

    def test_lru_eviction_bound(self, ex41):
        session = Session(dependencies=ex41.dependencies, cache_size=2)
        session.chase(ex41.q1, "bag")
        session.chase(ex41.q2, "bag")
        session.chase(ex41.q3, "bag")
        stats = session.cache_stats()
        assert stats.size == 2
        assert stats.evictions == 1

    def test_shared_cache_does_not_conflate_strategies(self, ex41):
        # Two sessions share one ChaseCache but bind "set" to different
        # strategies: the key's strategy identity keeps their chases apart.
        from repro.session import ChaseCache, SemanticsRegistry

        class OtherSetStrategy(SetStrategy):
            aliases = ()

        shared = ChaseCache()
        a = Session(dependencies=ex41.dependencies, cache=shared)
        b = Session(
            dependencies=ex41.dependencies,
            cache=shared,
            registry=SemanticsRegistry([OtherSetStrategy()]),
        )
        a.chase(ex41.q4, "set")
        b.chase(ex41.q4, "set")
        stats = shared.stats
        assert (stats.hits, stats.misses) == (0, 2)  # no cross-strategy hit
        a.chase(ex41.q4, "set")
        assert shared.stats.hits == 1  # same strategy still shares

    def test_positional_sigma_is_rejected(self, ex41):
        # Session(sigma) would silently bind Σ to the schema slot and decide
        # under an empty dependency set.
        from repro import SchemaError

        with pytest.raises(SchemaError, match="dependencies="):
            Session(ex41.dependencies)

    def test_unknown_semantics_error_pickles_intact(self):
        import pickle

        error = UnknownSemanticsError("prob", ("set", "bag"))
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.name == "prob" and clone.known == ("set", "bag")

    def test_schema_set_valued_markers_are_folded_into_sigma(self, ex41):
        bare_sigma = parse_dependencies("p(X,Y) -> t(X,Y,W)\nt(X,Y,Z) & t(X,Y,W) -> Z = W")
        assert not bare_sigma.set_valued_predicates
        session = Session(schema=ex41.schema, dependencies=bare_sigma)
        assert session.dependencies.set_valued_predicates == frozenset({"s", "t"})


# --------------------------------------------------------------------------- #
# decide_all and Proposition 6.1
# --------------------------------------------------------------------------- #
class TestDecideAll:
    def test_each_query_chased_once_per_semantics(self, ex41, session41):
        session41.decide_all(ex41.q1, ex41.q4)
        stats = session41.cache_stats()
        assert stats.misses == 6  # 2 queries x 3 semantics, nothing re-chased
        session41.decide_all(ex41.q1, ex41.q4)
        assert session41.cache_stats().misses == 6  # warm rerun chases nothing

    def test_verdicts_match_example_4_1(self, ex41, session41):
        verdicts = session41.decide_all(ex41.q1, ex41.q4)
        assert {str(k): bool(v) for k, v in verdicts.items()} == {
            "bag": False, "bag-set": False, "set": True,
        }

    def test_module_level_decide_all_matches(self, ex41):
        verdicts = decide_all(ex41.q1, ex41.q4, ex41.dependencies)
        assert {str(k): bool(v) for k, v in verdicts.items()} == {
            "bag": False, "bag-set": False, "set": True,
        }

    def test_proposition_6_1_chain_is_asserted(self, ex41):
        q = ex41.q4

        def verdict(semantics, equivalent):
            return EquivalenceVerdict(equivalent, semantics, q, q)

        # bag ⇒ bag-set violated:
        with pytest.raises(AssertionError):
            assert_proposition_6_1({
                Semantics.BAG: verdict(Semantics.BAG, True),
                Semantics.BAG_SET: verdict(Semantics.BAG_SET, False),
                Semantics.SET: verdict(Semantics.SET, True),
            })
        # bag-set ⇒ set violated:
        with pytest.raises(AssertionError):
            assert_proposition_6_1({
                Semantics.BAG: verdict(Semantics.BAG, False),
                Semantics.BAG_SET: verdict(Semantics.BAG_SET, True),
                Semantics.SET: verdict(Semantics.SET, False),
            })
        # A legal triple passes.
        assert_proposition_6_1({
            Semantics.BAG: verdict(Semantics.BAG, False),
            Semantics.BAG_SET: verdict(Semantics.BAG_SET, True),
            Semantics.SET: verdict(Semantics.SET, True),
        })


# --------------------------------------------------------------------------- #
# Batch pipelines
# --------------------------------------------------------------------------- #
class TestBatchPipelines:
    def test_decide_many_verdicts_in_order(self, ex41, session41):
        pairs = [(ex41.q1, ex41.q4), (ex41.q3, ex41.q4), (ex41.q2, ex41.q4)]
        report = session41.decide_many(pairs, semantics="bag")
        assert isinstance(report, BatchReport)
        assert [bool(item.result) for item in report] == [False, True, False]
        assert report.ok_count == 3 and report.error_count == 0
        assert [item.index for item in report] == [0, 1, 2]
        # 4 distinct queries -> 4 chases, not 6.
        assert session41.cache_stats().misses == 4

    def test_decide_many_error_capture(self, ex41, session41):
        pairs = [(ex41.q3, ex41.q4), (ex41.q1, ex41.q4)]
        report = session41.decide_many(pairs, semantics="bag", max_steps=1)
        assert report.error_count == 2
        failure = report.failures[0]
        assert failure.error_type == "ChaseNonTerminationError"
        assert "1 steps" in failure.error
        with pytest.raises(RuntimeError, match="ChaseNonTerminationError"):
            report.raise_on_failure()

    def test_decide_many_mixes_errors_and_results(self, ex41, session41):
        # Per-item budgets are not supported; build the mix from two batches
        # instead: one failing item must not poison the session for good ones.
        bad = session41.decide_many([(ex41.q1, ex41.q4)], semantics="bag", max_steps=1)
        good = session41.decide_many([(ex41.q3, ex41.q4)], semantics="bag")
        assert bad.error_count == 1 and good.ok_count == 1
        assert bool(good[0].result) is True

    def test_decide_many_concurrency_matches_sequential(self, ex41, session41):
        pairs = [
            (ex41.q1, ex41.q4), (ex41.q2, ex41.q4),
            (ex41.q3, ex41.q4), (ex41.q3, ex41.q5),
        ]
        sequential = session41.decide_many(pairs, semantics="bag")
        concurrent = session41.decide_many(pairs, semantics="bag", concurrency=2)
        assert [bool(i.result) for i in concurrent] == [bool(i.result) for i in sequential]
        assert concurrent.error_count == 0

    def test_decide_many_concurrency_refuses_custom_semantics(self, ex41, session41):
        class RenamedSetStrategy(SetStrategy):
            name = "certain"
            aliases = ()

        session41.register_semantics(RenamedSetStrategy())
        with pytest.raises(SemanticsError, match="custom"):
            session41.decide_many(
                [(ex41.q1, ex41.q4), (ex41.q2, ex41.q4)],
                semantics="certain",
                concurrency=2,
            )

    def test_decide_many_concurrency_refuses_shadowed_builtin_name(self, ex41, session41):
        # A custom strategy registered *under a built-in name* must not be
        # silently swapped for the stock built-in in worker processes.
        class InvertedSetStrategy(SetStrategy):
            aliases = ()

            def equivalent_chased(self, chased1, chased2, dependencies):
                return not super().equivalent_chased(chased1, chased2, dependencies)

        session41.register_semantics(InvertedSetStrategy(), replace=True)
        with pytest.raises(SemanticsError, match="custom"):
            session41.decide_many(
                [(ex41.q1, ex41.q4), (ex41.q2, ex41.q4)],
                semantics="set",
                concurrency=2,
            )

    def test_reformulate_many(self, ex41, session41):
        report = session41.reformulate_many(
            [ex41.q4, ex41.q3], semantics="bag", check_sigma_minimality=False
        )
        assert report.ok_count == 2
        q4_result, q3_result = report.results
        assert q4_result.contains_isomorphic(ex41.q3)
        assert q3_result.contains_isomorphic(ex41.q4)

    def test_empty_batch(self, session41):
        report = session41.decide_many([], semantics="bag")
        assert len(report) == 0 and report.ok_count == 0

    def test_malformed_item_is_captured_in_both_modes(self, ex41, session41):
        # A 1-tuple "pair" and a bare query must become per-item errors, not
        # sink the batch — sequentially and concurrently alike.
        pairs = [(ex41.q3, ex41.q4), (ex41.q1,), ex41.q2]
        for concurrency in (None, 2):
            report = session41.decide_many(pairs, semantics="bag", concurrency=concurrency)
            assert [item.ok for item in report] == [True, False, False], concurrency
            assert bool(report[0].result) is True
            assert report[1].error_type == "IndexError"
            assert report[2].error_type == "TypeError"

    def test_reformulate_many_handles_aggregate_queries(self, session41):
        from repro import parse_aggregate_query

        aggregate = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y)")
        report = session41.reformulate_many([aggregate])
        assert report.ok_count == 1
        assert report.results[0].core_result.semantics is Semantics.BAG_SET

    def test_reformulate_many_explicit_semantics_fails_aggregates(self, session41):
        # The direct API rejects an explicit semantics for aggregates; the
        # batch keeps that contract via per-item error capture.
        from repro import parse_aggregate_query

        aggregate = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y)")
        report = session41.reformulate_many([aggregate], semantics="set")
        assert report.error_count == 1
        assert report.failures[0].error_type == "SemanticsError"


# --------------------------------------------------------------------------- #
# Deprecation shims: old flat functions keep their outputs
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_equivalence_family_warns_and_matches(self, ex41, session41):
        shims = {
            "set": equivalent_under_dependencies_set,
            "bag": equivalent_under_dependencies_bag,
            "bag-set": equivalent_under_dependencies_bag_set,
        }
        for query in (ex41.q1, ex41.q2, ex41.q3):
            for semantics, shim in shims.items():
                with pytest.deprecated_call():
                    old = shim(query, ex41.q4, ex41.dependencies)
                assert old is bool(session41.decide(query, ex41.q4, semantics))

    def test_theorem_4_2_fixtures_match(self, ex41, session41):
        # Q3 vs Q5: duplicate subgoal over the set-valued S is harmless.
        with pytest.deprecated_call():
            old = equivalent_under_dependencies_bag(ex41.q3, ex41.q5, ex41.dependencies)
        assert old is True
        assert bool(session41.decide(ex41.q3, ex41.q5, "bag")) is True
        # Q7 vs Q8: duplicate subgoal over possibly-bag R is not (Example D.2).
        with pytest.deprecated_call():
            old = equivalent_under_dependencies_bag(ex41.q7, ex41.q8, ex41.dependencies)
        assert old is False
        assert bool(session41.decide(ex41.q7, ex41.q8, "bag")) is False

    def test_cb_family_warns_and_matches(self, ex41, session41):
        shims = {"set": c_and_b, "bag": bag_c_and_b, "bag-set": bag_set_c_and_b}
        for semantics, shim in shims.items():
            with pytest.deprecated_call():
                old = shim(ex41.q4, ex41.dependencies, check_sigma_minimality=False)
            new = session41.reformulate(
                ex41.q4, semantics, check_sigma_minimality=False
            )
            assert len(old.reformulations) == len(new.reformulations)
            for query in (ex41.q1, ex41.q2, ex41.q3, ex41.q4):
                assert old.contains_isomorphic(query) == new.contains_isomorphic(query)

    def test_decide_equivalence_delegates(self, ex41, session41):
        verdict = decide_equivalence(ex41.q1, ex41.q4, ex41.dependencies, "bag")
        assert verdict.semantics is Semantics.BAG
        assert verdict.equivalent is session41.decide(ex41.q1, ex41.q4, "bag").equivalent

    def test_shim_error_propagation(self, ex41):
        with pytest.deprecated_call():
            with pytest.raises(ChaseNonTerminationError):
                equivalent_under_dependencies_bag(
                    ex41.q1, ex41.q4, ex41.dependencies, max_steps=1
                )

    def test_warning_location_is_the_caller(self, ex41):
        # All six shims must attribute their DeprecationWarning to the
        # calling frame (stacklevel=2), i.e. to this test file — not to the
        # module the shim lives in.
        import warnings

        shim_calls = [
            lambda: equivalent_under_dependencies_set(ex41.q1, ex41.q4, ex41.dependencies),
            lambda: equivalent_under_dependencies_bag(ex41.q1, ex41.q4, ex41.dependencies),
            lambda: equivalent_under_dependencies_bag_set(ex41.q1, ex41.q4, ex41.dependencies),
            lambda: c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False),
            lambda: bag_c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False),
            lambda: bag_set_c_and_b(ex41.q4, ex41.dependencies, check_sigma_minimality=False),
        ]
        for call in shim_calls:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                call()
            deprecations = [w for w in caught if w.category is DeprecationWarning]
            assert len(deprecations) == 1
            assert deprecations[0].filename == __file__


# --------------------------------------------------------------------------- #
# Engine misuse guards
# --------------------------------------------------------------------------- #
class TestEngineGuards:
    def test_chase_and_backchase_rejects_mismatched_engine_sigma(self, ex41, session41):
        from repro import ReformulationError
        from repro.reformulation import chase_and_backchase

        with pytest.raises(ReformulationError, match="differs"):
            chase_and_backchase(ex41.q4, (), "bag", engine=session41)

    def test_reformulate_rejects_explicit_semantics_for_aggregates(self, session41):
        from repro import parse_aggregate_query

        aggregate = parse_aggregate_query("Q(X, sum(Y)) :- p(X,Y)")
        with pytest.raises(SemanticsError, match="aggregate"):
            session41.reformulate(aggregate, "set")
        # Without a semantics argument the Theorem 6.3 dispatch applies.
        result = session41.reformulate(aggregate)
        assert result.core_result.semantics is Semantics.BAG_SET


class TestKeyMemoBound:
    """The per-query ChaseKey memo is weak keyed *and* LRU bounded.

    Satellite of the uid-kernel PR (ROADMAP: cache-key memo eviction):
    weak keys alone cannot bound a caller that holds millions of distinct
    live queries, so the memo applies the chase cache's LRU policy.
    """

    def _session(self, **kwargs):
        from repro.paperlib import example_4_1

        return Session(dependencies=example_4_1().dependencies, **kwargs)

    def test_memo_is_bounded_by_the_cache_size(self):
        from repro.core.atoms import Atom
        from repro.core.query import ConjunctiveQuery
        from repro.session.cache import ChaseCache

        session = self._session(cache=ChaseCache(8))
        queries = [
            ConjunctiveQuery("Q", ["X"], [Atom(f"memo_bound_p{i}", ["X"])])
            for i in range(32)
        ]
        for query in queries:
            session.chase(query, "set")
        assert len(session._key_memo) <= 8
        assert session._key_memo.evictions >= 32 - 8
        del queries

    def test_memo_entry_dies_with_its_query(self):
        import gc

        from repro.core.atoms import Atom
        from repro.core.query import ConjunctiveQuery

        session = self._session()
        query = ConjunctiveQuery("Q", ["X"], [Atom("memo_weak_p", ["X"])])
        session.chase(query, "set")
        size_with_query = len(session._key_memo)
        assert size_with_query >= 1
        # The chase cache holds the terminal result — which, for this no-op
        # chase, is the query object itself — so drop it before collecting.
        session.cache.invalidate()
        del query
        gc.collect()
        assert len(session._key_memo) < size_with_query

    def test_memo_recency_survives_reuse(self):
        """A repeatedly used query is not evicted by newer one-off queries."""
        from repro.core.atoms import Atom
        from repro.core.query import ConjunctiveQuery
        from repro.session.cache import ChaseCache

        session = self._session(cache=ChaseCache(4))
        hot = ConjunctiveQuery("Q", ["X"], [Atom("memo_hot_p", ["X"])])
        session.chase(hot, "set")
        profile_before = session.chase_profile()
        cold = [
            ConjunctiveQuery("Q", ["X"], [Atom(f"memo_cold_p{i}", ["X"])])
            for i in range(3)
        ]
        for query in cold:
            session.chase(query, "set")
            session.chase(hot, "set")  # refresh recency
        profile_after = session.chase_profile()
        # Every post-warmup decision on `hot` reused the memoized key.
        assert (
            profile_after.cache_keys_reused - profile_before.cache_keys_reused >= 3
        )

    def test_weak_key_lru_unit_behaviour(self):
        import gc

        from repro.core.atoms import Atom
        from repro.core.query import ConjunctiveQuery
        from repro.session.cache import WeakKeyLRU

        memo = WeakKeyLRU(2)
        q1 = ConjunctiveQuery("Q", ["X"], [Atom("lru_p1", ["X"])])
        q2 = ConjunctiveQuery("Q", ["X"], [Atom("lru_p2", ["X"])])
        q3 = ConjunctiveQuery("Q", ["X"], [Atom("lru_p3", ["X"])])
        memo.put(q1, "one")
        memo.put(q2, "two")
        assert memo.get(q1) == "one"  # refreshes q1's recency
        memo.put(q3, "three")  # evicts q2, the least recently used
        assert memo.get(q2) is None
        assert memo.get(q1) == "one" and memo.get(q3) == "three"
        assert memo.evictions == 1
        # Overwriting an existing key neither grows nor evicts.
        memo.put(q1, "one-updated")
        assert memo.get(q1) == "one-updated"
        assert len(memo) == 2
        # Death of a key drops its entry without an eviction.
        del q3
        gc.collect()
        assert len(memo) == 1
        memo.clear()
        assert len(memo) == 0

    def test_weak_key_lru_rejects_nonpositive_size(self):
        from repro.session.cache import WeakKeyLRU

        with pytest.raises(ValueError):
            WeakKeyLRU(0)
