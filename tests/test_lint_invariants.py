"""The codebase invariant linter (tools/lint_invariants.py).

The linter itself is gated into CI; these tests pin its behaviour: the
real tree must be clean, each rule must fire on a synthetic violation, and
the frozen-reference checksum must both hold and detect drift.
"""

from __future__ import annotations

import hashlib
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent

_spec = importlib.util.spec_from_file_location(
    "lint_invariants", REPO_ROOT / "tools" / "lint_invariants.py"
)
lint_invariants = importlib.util.module_from_spec(_spec)
# Registered before exec: @dataclass resolves its module via sys.modules.
sys.modules["lint_invariants"] = lint_invariants
_spec.loader.exec_module(lint_invariants)


def _tree(tmp_path: Path, source: str, name: str = "offender.py") -> Path:
    module = tmp_path / "src" / "repro" / name
    module.parent.mkdir(parents=True, exist_ok=True)
    module.write_text(source)
    return tmp_path


def _rules(findings):
    return sorted({finding.rule for finding in findings})


def test_repository_tree_is_clean():
    findings = lint_invariants.lint_paths(REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_frozen_checksums_cover_both_reference_engines():
    pins = lint_invariants.FROZEN_CHECKSUMS
    assert set(pins) == {
        "src/repro/core/reference.py",
        "src/repro/chase/reference.py",
    }
    for rel_path, expected in pins.items():
        actual = hashlib.sha256((REPO_ROOT / rel_path).read_bytes()).hexdigest()
        assert actual == expected, f"{rel_path} drifted from its pin"


def test_detects_interned_subclass(tmp_path):
    root = _tree(
        tmp_path,
        "from repro.core.terms import Variable\n"
        "class Sneaky(Variable):\n"
        "    pass\n",
    )
    findings = lint_invariants.lint_paths(root, frozen_checksums={})
    assert _rules(findings) == ["interned-subclass"]


def test_detects_intern_bypass(tmp_path):
    root = _tree(
        tmp_path,
        "from repro.core.terms import Constant\n"
        "c = Constant.__new__(Constant)\n"
        "d = object.__new__(Constant)\n",
    )
    findings = lint_invariants.lint_paths(root, frozen_checksums={})
    assert _rules(findings) == ["intern-bypass"]
    assert len(findings) == 2


def test_detects_frozen_escape(tmp_path):
    root = _tree(
        tmp_path,
        "class Holder:\n"
        "    def __init__(self):\n"
        "        object.__setattr__(self, 'x', 1)\n",
    )
    findings = lint_invariants.lint_paths(root, frozen_checksums={})
    assert _rules(findings) == ["frozen-escape"]


def test_frozen_escape_allowed_in_allowlisted_module(tmp_path):
    root = _tree(
        tmp_path,
        "class Holder:\n"
        "    def __init__(self):\n"
        "        object.__setattr__(self, 'x', 1)\n",
        name="core/terms.py",
    )
    assert lint_invariants.lint_paths(root, frozen_checksums={}) == []


def test_detects_forbidden_import(tmp_path):
    root = _tree(
        tmp_path,
        "import networkx\nfrom networkx import MultiDiGraph\n",
    )
    findings = lint_invariants.lint_paths(root, frozen_checksums={})
    assert _rules(findings) == ["forbidden-import"]
    assert len(findings) == 2


def test_relative_imports_are_not_flagged(tmp_path):
    root = _tree(tmp_path, "from . import base\nfrom .base import TGD\n")
    assert lint_invariants.lint_paths(root, frozen_checksums={}) == []


def test_detects_frozen_drift(tmp_path):
    root = _tree(tmp_path, "x = 1\n", name="frozen.py")
    findings = lint_invariants.lint_paths(
        root, frozen_checksums={"src/repro/frozen.py": "0" * 64}
    )
    assert _rules(findings) == ["frozen-drift"]
    missing = lint_invariants.lint_paths(
        root, frozen_checksums={"src/repro/gone.py": "0" * 64}
    )
    assert _rules(missing) == ["frozen-drift"]


def test_syntax_errors_are_reported_not_raised(tmp_path):
    root = _tree(tmp_path, "def broken(:\n")
    findings = lint_invariants.lint_paths(root, frozen_checksums={})
    assert _rules(findings) == ["syntax-error"]


def test_main_exit_codes(tmp_path, capsys):
    assert lint_invariants.main([str(REPO_ROOT)]) == 0
    assert "all invariants hold" in capsys.readouterr().out
    root = _tree(tmp_path, "import networkx\n")
    # main() checks the real FROZEN_CHECKSUMS against this synthetic tree,
    # where the pinned files do not exist — both rule families fire.
    assert lint_invariants.main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "forbidden-import" in out and "frozen-drift" in out
