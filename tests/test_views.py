"""Tests for view definitions, expansion, and view-based rewriting."""

from __future__ import annotations

import pytest

from repro.core import are_isomorphic, is_set_equivalent
from repro.datalog import parse_dependencies, parse_query
from repro.dependencies import DependencySet
from repro.exceptions import ReformulationError, SchemaError
from repro.schema import DatabaseSchema
from repro.semantics import Semantics
from repro.views import (
    ViewDefinition,
    ViewSet,
    is_correct_rewriting,
    rewrite_query_using_views,
)


@pytest.fixture()
def order_views() -> ViewSet:
    """Two views over an orders/customer schema.

    ``v_oc`` joins orders with customers; ``v_orders`` projects orders.
    """
    v_oc = ViewDefinition(
        "v_oc",
        parse_query("V(O, C) :- orders(O, C, P), customer(C, N)"),
    )
    v_orders = ViewDefinition(
        "v_orders", parse_query("V(O, C) :- orders(O, C, P)"), distinct=True
    )
    return ViewSet([v_oc, v_orders])


@pytest.fixture()
def order_dependencies() -> DependencySet:
    return parse_dependencies(
        """
        orders(O, C, P) -> customer(C, N)
        customer(C, N1) & customer(C, N2) -> N1 = N2
        """,
        set_valued=["customer"],
    )


class TestViewDefinition:
    def test_arity_and_head_atom(self):
        view = ViewDefinition("v", parse_query("V(X, Y) :- p(X, Z), r(Z, Y)"))
        assert view.arity == 2
        assert view.head_atom().predicate == "v"

    def test_forward_and_backward_dependencies(self):
        view = ViewDefinition("v", parse_query("V(X) :- p(X, Z)"))
        forward = view.forward_dependency()
        backward = view.backward_dependency()
        assert forward.is_full()
        assert [a.predicate for a in forward.conclusion] == ["v"]
        assert [a.predicate for a in backward.premise] == ["v"]
        assert backward.existential_variables()  # Z is existential

    def test_relation_schema_set_valuedness(self):
        bag_view = ViewDefinition("v1", parse_query("V(X) :- p(X, Z)"))
        set_view = ViewDefinition("v2", parse_query("V(X) :- p(X, Z)"), distinct=True)
        assert not bag_view.relation_schema().set_valued
        assert set_view.relation_schema().set_valued

    def test_empty_name_rejected(self):
        with pytest.raises(Exception):
            ViewDefinition("", parse_query("V(X) :- p(X, Z)"))


class TestViewSet:
    def test_membership_and_lookup(self, order_views):
        assert "v_oc" in order_views and "nope" not in order_views
        assert order_views.view("v_oc").arity == 2
        assert len(order_views) == 2
        with pytest.raises(SchemaError):
            order_views.view("nope")

    def test_duplicate_names_rejected(self, order_views):
        with pytest.raises(SchemaError):
            order_views.add(ViewDefinition("v_oc", parse_query("V(X) :- p(X, Y)")))

    def test_set_valued_view_names(self, order_views):
        assert order_views.set_valued_view_names() == {"v_orders"}

    def test_extend_schema(self, order_views):
        schema = DatabaseSchema.from_arities({"orders": 3, "customer": 2})
        extended = order_views.extend_schema(schema)
        assert extended.arity("v_oc") == 2
        assert extended.relation("v_orders").set_valued
        # Base schema untouched.
        assert "v_oc" not in schema

    def test_extend_schema_name_clash(self, order_views):
        schema = DatabaseSchema.from_arities({"v_oc": 1})
        with pytest.raises(SchemaError):
            order_views.extend_schema(schema)

    def test_combined_dependencies(self, order_views, order_dependencies):
        combined = order_views.combined_dependencies(order_dependencies)
        assert len(combined) == len(order_dependencies) + 4
        assert combined.is_set_valued("v_orders")
        assert combined.is_set_valued("customer")
        assert not combined.is_set_valued("v_oc")


class TestExpansion:
    def test_simple_expansion(self, order_views):
        rewriting = parse_query("Q(O) :- v_oc(O, C)")
        expansion = order_views.expand(rewriting)
        assert expansion.predicate_counts() == {"orders": 1, "customer": 1}
        # The view's head variables are bound to the rewriting's arguments.
        orders_atom = next(a for a in expansion.body if a.predicate == "orders")
        assert str(orders_atom.terms[0]) == "O"

    def test_existentials_are_fresh_per_occurrence(self, order_views):
        rewriting = parse_query("Q(O1, O2) :- v_orders(O1, C), v_orders(O2, C)")
        expansion = order_views.expand(rewriting)
        orders_atoms = [a for a in expansion.body if a.predicate == "orders"]
        assert len(orders_atoms) == 2
        # The P-position witnesses must be distinct fresh variables.
        assert orders_atoms[0].terms[2] != orders_atoms[1].terms[2]

    def test_base_atoms_pass_through(self, order_views):
        mixed = parse_query("Q(O) :- v_orders(O, C), customer(C, N)")
        expansion = order_views.expand(mixed)
        assert expansion.predicate_counts() == {"orders": 1, "customer": 1}

    def test_arity_mismatch_rejected(self, order_views):
        with pytest.raises(SchemaError):
            order_views.expand(parse_query("Q(O) :- v_oc(O)"))

    def test_constants_propagate(self, order_views):
        rewriting = parse_query("Q(O) :- v_oc(O, 7)")
        expansion = order_views.expand(rewriting)
        orders_atom = next(a for a in expansion.body if a.predicate == "orders")
        assert str(orders_atom.terms[1]) == "7"


class TestRewriting:
    def test_set_semantics_rewriting_found(self, order_views, order_dependencies):
        query = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")
        result = rewrite_query_using_views(
            query, order_views, order_dependencies, Semantics.SET
        )
        assert result.rewritings
        # The single-view rewriting over v_oc answers the query.
        assert result.contains_isomorphic(parse_query("Q(O) :- v_oc(O, C)"))
        # Every accepted rewriting's expansion is set-equivalent to the query under Σ.
        for rewriting in result.rewritings:
            assert is_correct_rewriting(
                rewriting, query, order_views, order_dependencies, Semantics.SET
            )

    def test_bag_set_semantics_rejects_multiplicity_changing_rewriting(
        self, order_views, order_dependencies
    ):
        # Under bag-set semantics the customer join multiplies nothing (the
        # customer key pins it), so v_oc is still a correct rewriting; but the
        # projection view v_orders alone is also correct for the orders-only query.
        query = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")
        result = rewrite_query_using_views(
            query, order_views, order_dependencies, Semantics.BAG_SET
        )
        assert result.contains_isomorphic(parse_query("Q(O) :- v_oc(O, C)"))

    def test_total_only_flag(self, order_views, order_dependencies):
        query = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")
        total = rewrite_query_using_views(
            query, order_views, order_dependencies, Semantics.SET, total_only=True
        )
        mixed = rewrite_query_using_views(
            query, order_views, order_dependencies, Semantics.SET, total_only=False
        )
        assert len(mixed.rewritings) >= len(total.rewritings)
        assert all(order_views.uses_only_views(r) for r in total.rewritings)

    def test_query_over_views_rejected_as_input(self, order_views, order_dependencies):
        with pytest.raises(ReformulationError):
            rewrite_query_using_views(
                parse_query("Q(O) :- v_oc(O, C)"), order_views, order_dependencies
            )

    def test_expansion_recorded(self, order_views, order_dependencies):
        query = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")
        result = rewrite_query_using_views(
            query, order_views, order_dependencies, Semantics.SET
        )
        for rewriting in result.rewritings:
            expansion = result.expansion_of(rewriting)
            assert expansion.predicates() <= {"orders", "customer"}

    def test_no_views_usable_yields_empty(self, order_dependencies):
        views = ViewSet([ViewDefinition("v_other", parse_query("V(X) :- widget(X, Y)"))])
        query = parse_query("Q(O) :- orders(O, C, P)")
        result = rewrite_query_using_views(query, views, order_dependencies, "set")
        assert len(result) == 0

    def test_incorrect_rewriting_detected(self, order_views, order_dependencies):
        query = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")
        wrong = parse_query("Q(O) :- v_orders(O, O)")
        assert not is_correct_rewriting(
            wrong, query, order_views, order_dependencies, "set"
        )
