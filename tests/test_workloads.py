"""Tests for the synthetic benchmark workloads (H family, chains, orders)."""

from __future__ import annotations

import pytest

from repro.chase import bag_chase, bag_set_chase, set_chase
from repro.core import is_set_equivalent
from repro.database import canonical_database, satisfies_all
from repro.dependencies import is_key_based_tgd, is_weakly_acyclic
from repro.paperlib import ORDERS_DDL, chain_workload, h_family, orders_workload
from repro.sql import schema_from_ddl


class TestHFamily:
    def test_number_of_dependencies_quadratic(self):
        workload = h_family(4)
        tgd_count = len(workload.dependencies.tgds())
        assert tgd_count == 2 * (3 + 2 + 1)
        assert len(workload.dependencies.egds()) == 2 * 4

    def test_all_tgds_key_based_in_keyed_variant(self):
        workload = h_family(3)
        assert all(
            is_key_based_tgd(tgd, workload.dependencies)
            for tgd in workload.dependencies.tgds()
        )

    def test_weakly_acyclic(self):
        assert is_weakly_acyclic(h_family(5).dependencies)

    def test_chase_growth_is_exponential_in_m(self):
        # Example H.1/H.2: the terminal chase has ~2^(i-1) subgoals for p_i.
        sizes = {}
        for m in (2, 3, 4):
            result = set_chase(h_family(m).query, h_family(m).dependencies)
            sizes[m] = len(result.query.body)
        assert sizes[3] > sizes[2] and sizes[4] >= 2 * sizes[3] - 2
        counts = set_chase(h_family(4).query, h_family(4).dependencies).query.predicate_counts()
        # At least the doubling of Example H.1: ~2^(i-1) subgoals for p_i.
        assert counts["p1"] == 1 and counts["p2"] == 2
        assert counts["p3"] >= 4 and counts["p4"] >= 8

    def test_sound_chase_applies_key_based_tgds(self):
        workload = h_family(3)
        bag_result = bag_chase(workload.query, workload.dependencies)
        bag_set_result = bag_set_chase(workload.query, workload.dependencies)
        set_result = set_chase(workload.query, workload.dependencies)
        assert len(bag_result.query.body) == len(set_result.query.body)
        assert len(bag_set_result.query.body) == len(set_result.query.body)

    def test_unkeyed_variant_blocks_sound_chase(self):
        workload = h_family(3, key_based=False)
        bag_result = bag_chase(workload.query, workload.dependencies)
        assert len(bag_result.query.body) == 1

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            h_family(0)


class TestChainWorkload:
    def test_shape(self):
        workload = chain_workload(4)
        assert len(workload.query.body) == 4
        assert len(workload.dependencies.tgds()) == 3
        assert len(workload.dependencies.egds()) == 4
        assert is_weakly_acyclic(workload.dependencies)

    def test_chase_terminates_and_satisfies(self, chain3):
        result = set_chase(chain3.query, chain3.dependencies)
        canonical = canonical_database(result.query).instance
        assert satisfies_all(canonical, list(chain3.dependencies), check_set_valuedness=False)

    def test_chase_result_set_equivalent_to_query(self, chain3):
        chased = set_chase(chain3.query, chain3.dependencies).query
        assert is_set_equivalent(chased, chain3.query)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            chain_workload(0)


class TestOrdersWorkload:
    def test_dependency_shapes(self, orders):
        assert len(orders.dependencies.tgds()) == 2
        assert len(orders.dependencies.egds()) == 2
        assert orders.dependencies.set_valued_predicates == {"customer", "product"}

    def test_matches_ddl_translation(self, orders):
        schema, dependencies = schema_from_ddl(ORDERS_DDL)
        assert schema.arity("orders") == 3
        assert set(schema.relation_names()) == set(orders.schema.relation_names())
        assert dependencies.set_valued_predicates == orders.dependencies.set_valued_predicates
        assert len(dependencies.tgds()) == len(orders.dependencies.tgds())

    def test_bag_chase_of_single_orders_atom_regenerates_lookups(self, orders):
        single = orders.query.with_body(orders.query.body[:1])
        result = bag_chase(single, orders.dependencies)
        assert result.query.predicate_counts() == {
            "orders": 1,
            "customer": 1,
            "product": 1,
        }
